# Convenience targets; everything is plain dune underneath.

.PHONY: all build check test lint lint-race test-chaos test-mc test-byz test-durable test-load bench bench-big bench-perf bench-smoke bench-gate-selftest examples doc clean outputs

all: build

build:
	dune build @all

# Fast typecheck: compile signatures/cmis only, no linking or tests —
# the first CI step, so type errors surface before anything slower runs.
check:
	dune build @check

test:
	dune runtest

# Determinism & protocol-hygiene gate (docs/LINT.md): dlint over the
# library and binary sources. Exit 0 = clean, 1 = findings, 2 = usage.
lint:
	dune exec bin/dcount.exe -- lint lib bin

# Domain-safety gate (docs/LINT.md, drace family): the engine sources
# must be drace-clean, and the racy negative controls under test/race
# must keep firing — if they stop, the analyzer lost its teeth.
lint-race:
	dune exec bin/dcount.exe -- lint --rules drace lib bin
	! dune exec bin/dcount.exe -- lint --rules drace test/race/racy_par.ml
	! dune exec bin/dcount.exe -- lint --rules drace test/race/racy_replicate.ml

# Fault-injection smoke (docs/FAULTS.md): the failure-aware quorum
# counter must complete every live-origin op under f < ceil(n/2)
# crashes, and the retirement counter must stall cleanly (exit 0 means
# both chaos checks passed).
test-chaos:
	dune exec bin/dcount.exe -- chaos -c quorum-majority -n 9 --crashes 0,1,2,3,4 --ops 18 --seed 42 --check
	dune exec bin/dcount.exe -- chaos -c retire-tree -n 8 --crashes 0,1,2 --ops 16 --check
	dune exec bin/dcount.exe -- chaos -c retire-ft -n 8 --crashes 0,1,2,3 --ops 16 --check
	dune exec bin/dcount.exe -- chaos -c retire-ft -n 8 --crashes 0,1,2,3,4 --ops 16 --recover --check

# Model-checking smoke (docs/MODELCHECK.md): exhaustively verify the
# central and retirement counters over every delivery interleaving at
# small scale, prove the broken negative controls still violate, and
# replay the stored counterexamples — regenerating each must reproduce
# its test/data/*.mcs byte for byte. The retire-ft crash-adversary rows
# are depth-bounded (--max-depth + --allow-incomplete): the failure-aware
# audit's timer interleavings make the full space intractable, so the
# sweep asserts no-duplicate/linearizability/Hot-Spot over every
# interleaving of the first 6 decisions (crash timing included) and a
# deterministic tail beyond.
test-mc:
	dune exec bin/dcount.exe -- mc -c central -n 5
	dune exec bin/dcount.exe -- mc -c retire-tree -n 8 -s explicit:1,8,4
	dune exec bin/dcount.exe -- mc -c retire-ft -n 8 -s explicit:1,8,4
	dune exec bin/dcount.exe -- mc -c retire-ft -n 8 -s explicit:2,5 --faults crash:1@99 --max-depth 6 --allow-incomplete
	dune exec bin/dcount.exe -- mc -c retire-ft -n 8 -s explicit:2,5 --faults crash:5@99 --max-depth 6 --allow-incomplete
	dune exec bin/dcount.exe -- mc -c amnesiac -n 4 --expect-violation
	dune exec bin/dcount.exe -- mc -c race-reply -n 3 --expect-violation --counterexample-out /tmp/race_reply_n3.mcs
	cmp /tmp/race_reply_n3.mcs test/data/race_reply_n3.mcs
	dune exec bin/dcount.exe -- mc --replay test/data/race_reply_n3.mcs
	dune exec bin/dcount.exe -- mc -c ft-no-handoff -n 8 -s explicit:2,5 --faults crash:1@99 --max-depth 6 --expect-violation --counterexample-out /tmp/ft_no_handoff_n8.mcs
	cmp /tmp/ft_no_handoff_n8.mcs test/data/ft_no_handoff_n8.mcs
	dune exec bin/dcount.exe -- mc --replay test/data/ft_no_handoff_n8.mcs
	dune exec bin/dcount.exe -- mc -c durable-no-cas -n 2 -s explicit:2 --faults crash:1@99/recover:1@120 --max-depth 10 --max-states 300000 --expect-violation --counterexample-out /tmp/durable_no_cas_n2.mcs
	cmp /tmp/durable_no_cas_n2.mcs test/data/durable_no_cas_n2.mcs
	dune exec bin/dcount.exe -- mc --replay test/data/durable_no_cas_n2.mcs
	dune exec bin/dcount.exe -- mc -c sync-no-threshold -n 4 -s explicit:1 --faults byz:2@99/byzval:2:off-by-1/byzeq:2 --max-depth 100 --expect-violation --property agreement-violated --counterexample-out /tmp/sync_no_threshold_n4.mcs
	cmp /tmp/sync_no_threshold_n4.mcs test/data/sync_no_threshold_n4.mcs
	dune exec bin/dcount.exe -- mc --replay test/data/sync_no_threshold_n4.mcs

# Byzantine gate (docs/FAULTS.md): the adversarial test battery, then
# the chaos sweep's f < n/3 contract end to end — sync-count completes
# every operation with zero agreement stalls at b <= f while the
# sync-no-threshold control splits on every b >= 1 row, and the model
# checker's corruption adversary finds agreement-violated on the control
# (byte-identical stored counterexample, checked by test-mc) while
# sync-count survives the same bounded hunt.
test-byz:
	dune exec test/test_byzantine.exe
	dune exec bin/dcount.exe -- chaos --byz -c sync-count -n 7 --check
	dune exec bin/dcount.exe -- chaos --byz -c sync-no-threshold -n 7 --check
	dune exec bin/dcount.exe -- run -c sync-count -n 7 -s round-robin:10 --faults byz:3@0/byzval:3:max-int/byzeq:3/byz:5@0/byzval:5:off-by-7
	dune exec bin/dcount.exe -- mc -c sync-count -n 4 -s explicit:1 --faults byz:2@99/byzval:2:off-by-1/byzeq:2 --max-states 4000 --max-depth 100 --allow-incomplete --property agreement-violated

# Durability gate (docs/DURABILITY.md): the WAL-backed counter loses no
# acked increment under crash/recover chaos (store-RPC faults included),
# the oswald specs hold under the model checker's crash/recover
# adversary (bounded; CounterProgress via --progress), and the stored
# durable-no-cas counterexample regenerates byte-for-byte — the witness
# that the manifest CAS is load-bearing.
test-durable:
	dune exec bin/dcount.exe -- chaos --durable -n 4 --ops 40 --crashes 0,1,2,3 --recover --check
	dune exec bin/dcount.exe -- chaos --durable -n 4 --ops 40 --crashes 0,1,2,3 --drops 0,0.1 --recover --check
	dune exec bin/dcount.exe -- mc -c durable -n 2 -s explicit:2,2,2
	dune exec bin/dcount.exe -- mc -c durable -n 2 -s explicit:2,2 --faults crash:1@99/recover:1@120 --progress --max-depth 12 --max-states 20000 --allow-incomplete
	dune exec bin/dcount.exe -- mc -c durable-no-cas -n 2 -s explicit:2 --faults crash:1@99/recover:1@120 --max-depth 10 --max-states 300000 --expect-violation --counterexample-out /tmp/durable_no_cas_n2.mcs
	cmp /tmp/durable_no_cas_n2.mcs test/data/durable_no_cas_n2.mcs
	dune exec bin/dcount.exe -- mc --replay test/data/durable_no_cas_n2.mcs

# Open-loop load gate (docs/LOAD.md): the generator/checker unit+property
# suite, then dcount load --check end to end — the paper's counter and
# the combining tree must stay linearizable at the moderate-overlap rate
# where the counting network provably is not (exit 1 there is the
# negative control), and one report must be byte-identical across
# event-queue shard counts.
test-load:
	dune exec test/test_load.exe
	dune exec bin/dcount.exe -- load -c retire-tree -n 64 --rate 0.05 --ops 1000 --seed 42 --check
	dune exec bin/dcount.exe -- load -c combining -n 64 --rate 0.05 --ops 1000 --seed 42 --check
	! dune exec bin/dcount.exe -- load -c counting-net -n 64 --rate 0.05 --ops 1000 --seed 42 --check
	dune exec bin/dcount.exe -- load -c counting-net -n 64 --rate 2.0 --ops 2000 --seed 42 --sim-domains 1 > /tmp/load_d1.txt
	dune exec bin/dcount.exe -- load -c counting-net -n 64 --rate 2.0 --ops 2000 --seed 42 --sim-domains 4 > /tmp/load_d4.txt
	cmp /tmp/load_d1.txt /tmp/load_d4.txt

bench:
	dune exec bench/main.exe

bench-big:
	dune exec bench/main.exe -- --big

# Full engine-throughput suite; writes BENCH_4.json (docs/PERFORMANCE.md).
# Always the release profile, so committed artefacts are comparable.
bench-perf:
	dune build --profile release bench/perf.exe
	./_build/default/bench/perf.exe --json --out BENCH_4.json

# Seconds-scale CI regression gate: a smoke benchmark run compared
# against the newest committed BENCH_*.json (rates must stay within the
# gate tolerance — cross-mode smoke-vs-full comparisons double it; see
# bench/perf.ml), then the emitted artefact is re-parsed and validated.
# Non-zero exit on regression.
bench-smoke:
	dune build --profile release bench/perf.exe
	./_build/default/bench/perf.exe --smoke --json --out BENCH_smoke.json \
	  --gate "$$(ls BENCH_[0-9]*.json | sort -V | tail -1)"
	./_build/default/bench/perf.exe --validate BENCH_smoke.json

# Prove the gate has teeth: a 4x synthetic slowdown (--handicap 0.25)
# must make bench-smoke's comparison fail. Exit 0 here means the gate
# correctly rejected the handicapped run.
bench-gate-selftest:
	dune build --profile release bench/perf.exe
	! ./_build/default/bench/perf.exe --smoke --handicap 0.25 \
	  --gate "$$(ls BENCH_[0-9]*.json | sort -V | tail -1)"

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ticket_service.exe
	dune exec examples/adversary_demo.exe
	dune exec examples/quorum_failover.exe
	dune exec examples/concurrent_batches.exe
	dune exec examples/job_queue.exe

doc:
	dune build @doc

# The artefacts EXPERIMENTS.md numbers were taken from.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
