(* Exit-code contract of the dcount binary: the chaos and mc subcommands
   drive these from CI, so the codes are load-bearing. The test runs the
   real executable (a dune dep of this stanza) from the build sandbox. *)

let dcount = Filename.concat ".." (Filename.concat "bin" "dcount.exe")

let tmp = Filename.get_temp_dir_name ()

let run ?(quiet = true) args =
  let silence = if quiet then " >/dev/null 2>/dev/null" else "" in
  Sys.command (Filename.quote dcount ^ " " ^ args ^ silence)

let check_exit name expected args =
  Alcotest.(check int) name expected (run args)

(* ------------------------------------------------------------------ *)
(* dcount mc *)

let test_mc_exhausted_ok () =
  check_exit "central n=4 exhausts cleanly" 0 "mc -c central -n 4";
  check_exit "static-tree n=4 exhausts cleanly" 0 "mc -c static-tree -n 4"

let test_mc_explicit_schedule () =
  check_exit "retire-tree, 3 explicit ops" 0
    "mc -c retire-tree -n 8 -s explicit:1,8,4"

let test_mc_violation_exit_codes () =
  check_exit "race-reply violation = exit 1" 1 "mc -c race-reply -n 3";
  check_exit "--expect-violation inverts it" 0
    "mc -c race-reply -n 3 --expect-violation";
  check_exit "--expect-violation on a clean counter = exit 1" 1
    "mc -c central -n 3 --expect-violation";
  check_exit "amnesiac violation" 0 "mc -c amnesiac -n 4 --expect-violation"

let test_mc_budget_exit_code () =
  check_exit "blown state budget = exit 3" 3
    "mc -c retire-tree -n 8 --max-states 50"

let test_mc_replay_stored () =
  check_exit "stored counterexample reproduces" 0
    "mc --replay data/race_reply_n3.mcs"

let test_mc_replay_bad_file () =
  check_exit "missing file = exit 2" 2 "mc --replay data/no_such_file.mcs";
  let bad = Filename.concat tmp "dcount_cli_bad.mcs" in
  Out_channel.with_open_text bad (fun oc ->
      Out_channel.output_string oc "counter=central\nnot a field\n");
  Fun.protect
    ~finally:(fun () -> try Sys.remove bad with Sys_error _ -> ())
    (fun () ->
      check_exit "unparseable file = exit 2" 2
        ("mc --replay " ^ Filename.quote bad))

let test_mc_counterexample_round_trip () =
  let out = Filename.concat tmp "dcount_cli_cx.mcs" in
  (try Sys.remove out with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      check_exit "find and write counterexample" 0
        ("mc -c race-reply -n 3 --expect-violation --counterexample-out "
        ^ Filename.quote out);
      Alcotest.(check bool) "file written" true (Sys.file_exists out);
      (* The freshly generated counterexample must match the stored one
         byte for byte — same canonical form, same deterministic search. *)
      let slurp p = In_channel.with_open_text p In_channel.input_all in
      Alcotest.(check string)
        "canonical bytes" (slurp "data/race_reply_n3.mcs") (slurp out);
      check_exit "and it replays" 0 ("mc --replay " ^ Filename.quote out))

let test_mc_all_table () =
  (* Broken counters violate but are annotated; exit stays 0. A tight
     budget keeps the tree counters from blowing the CI clock. *)
  check_exit "--all sweep" 0 "mc --all -n 3 --max-states 20000"

let test_mc_prune_none () =
  check_exit "--prune none still exhausts" 0 "mc -c central -n 3 --prune none";
  check_exit "bad prune mode = exit 2" 2 "mc -c central -n 3 --prune bogus"

let test_mc_probabilistic_faults_rejected () =
  (* Invalid_argument escapes as a crash, not 0/1/3 — any of the cmdliner
     error codes is acceptable; it must not look like a verdict. *)
  let code = run "mc -c central -n 3 --faults drop:0.5" in
  Alcotest.(check bool)
    (Printf.sprintf "drop plan rejected (exit %d)" code)
    true
    (code <> 0 && code <> 1 && code <> 3)

let test_mc_crash_faults () =
  check_exit "adversarial crash exploration" 0
    "mc -c central -n 3 --faults crash:1@99"

let test_mc_retire_ft () =
  (* Fault-free, the failure-aware tree is bit-identical to retire-tree,
     so the same explicit schedule exhausts. *)
  check_exit "retire-ft fault-free" 0 "mc -c retire-ft -n 8 -s explicit:1,8,4";
  (* Under a crash adversary the audit's timer interleavings are
     intractable exhaustively: without --allow-incomplete the bounded
     sweep reports exit 3, with it the clean bounded verdict is 0. *)
  check_exit "crash adversary, bounded = exit 3" 3
    "mc -c retire-ft -n 8 -s explicit:2 --faults crash:1@99 --max-depth 4 \
     --max-states 2000";
  check_exit "--allow-incomplete accepts the bounded verdict" 0
    "mc -c retire-ft -n 8 -s explicit:2 --faults crash:1@99 --max-depth 4 \
     --max-states 2000 --allow-incomplete";
  (* A failed hunt is never a success, bounded or not. *)
  check_exit "--expect-violation still fails on budget" 3
    "mc -c retire-ft -n 8 -s explicit:2 --faults crash:1@99 --max-depth 4 \
     --max-states 2000 --allow-incomplete --expect-violation";
  (* recover clauses are adversarial now: the revival time is ignored
     and the explorer branches over reviving the crashed victim at every
     decision point. *)
  check_exit "recover adversary, bounded" 0
    "mc -c retire-ft -n 8 -s explicit:2 --faults crash:1@99/recover:1@120 \
     --max-depth 4 --max-states 2000 --allow-incomplete"

let test_mc_ft_no_handoff_stored () =
  let out = Filename.concat tmp "dcount_cli_ft_cx.mcs" in
  (try Sys.remove out with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      check_exit "crash adversary finds the duplicate" 0
        ("mc -c ft-no-handoff -n 8 -s explicit:2,5 --faults crash:1@99 \
          --max-depth 6 --expect-violation --counterexample-out "
        ^ Filename.quote out);
      let slurp p = In_channel.with_open_text p In_channel.input_all in
      Alcotest.(check string)
        "canonical bytes match the stored negative control"
        (slurp "data/ft_no_handoff_n8.mcs")
        (slurp out));
  check_exit "stored counterexample replays" 0
    "mc --replay data/ft_no_handoff_n8.mcs"

let test_mc_durable () =
  (* Fault-free the durable counter's space is tiny and clean. *)
  check_exit "durable fault-free exhausts" 0
    "mc -c durable -n 2 -s explicit:2,2";
  (* Crash/recover adversary with the CounterProgress check on: bounded
     clean. *)
  check_exit "durable crash/recover bounded with --progress" 0
    "mc -c durable -n 2 -s explicit:2,2 --faults crash:1@99/recover:1@120 \
     --progress --max-depth 10 --max-states 5000 --allow-incomplete"

let test_mc_durable_no_cas_stored () =
  (* Regenerate the durable negative control with the hunt parameters
     the Makefile uses and compare byte-for-byte against the stored
     file — the CAS-is-load-bearing witness. *)
  let out = Filename.concat tmp "dcount_cli_durable_cx.mcs" in
  (try Sys.remove out with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      check_exit "recover adversary finds the manifest regression" 0
        ("mc -c durable-no-cas -n 2 -s explicit:2 --faults \
          crash:1@99/recover:1@120 --max-depth 10 --max-states 300000 \
          --expect-violation --counterexample-out "
        ^ Filename.quote out);
      let slurp p = In_channel.with_open_text p In_channel.input_all in
      Alcotest.(check string)
        "canonical bytes match the stored negative control"
        (slurp "data/durable_no_cas_n2.mcs")
        (slurp out));
  check_exit "stored counterexample replays" 0
    "mc --replay data/durable_no_cas_n2.mcs"

let test_mc_byz_property () =
  (* The corruption adversary splits the guard-stripped control on the
     very first execution; --property pins the verdict to the agreement
     invariant specifically. *)
  let hunt =
    "mc -c sync-no-threshold -n 4 -s explicit:1 --faults \
     byz:2@99/byzval:2:off-by-1/byzeq:2 --max-depth 100"
  in
  check_exit "hunt finds agreement-violated" 0
    (hunt ^ " --expect-violation --property agreement-violated");
  check_exit "--property mismatch = exit 1" 1
    (hunt ^ " --expect-violation --property values-wrong");
  check_exit "unknown property name = exit 2" 2
    (hunt ^ " --expect-violation --property no-such-thing");
  (* The guarded counter survives the same adversary under a bounded
     budget. *)
  check_exit "sync-count survives the same hunt" 0
    "mc -c sync-count -n 4 -s explicit:1 --faults \
     byz:2@99/byzval:2:off-by-1/byzeq:2 --max-depth 100 --max-states 4000 \
     --allow-incomplete --property agreement-violated"

let test_mc_byz_usage_errors () =
  (* A payload-rewriting plan needs the corruption hook: counters
     without one are rejected up front, and --all never mixes hooked
     and hookless counters under one plan. *)
  check_exit "byzval plan on hookless counter = exit 2" 2
    "mc -c central -n 3 --faults byz:1@99/byzval:1:max-int";
  check_exit "--all with byzval plan = exit 2" 2
    "mc --all -n 3 --faults byz:1@99/byzval:1:max-int"

let test_mc_sync_no_threshold_stored () =
  (* Regenerate the Byzantine negative control with the Makefile's hunt
     parameters and compare byte-for-byte against the stored file — the
     round-3-threshold-is-load-bearing witness. *)
  let out = Filename.concat tmp "dcount_cli_sync_cx.mcs" in
  (try Sys.remove out with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      check_exit "corruption adversary splits the control" 0
        ("mc -c sync-no-threshold -n 4 -s explicit:1 --faults \
          byz:2@99/byzval:2:off-by-1/byzeq:2 --max-depth 100 \
          --expect-violation --property agreement-violated \
          --counterexample-out "
        ^ Filename.quote out);
      let slurp p = In_channel.with_open_text p In_channel.input_all in
      Alcotest.(check string)
        "canonical bytes match the stored negative control"
        (slurp "data/sync_no_threshold_n4.mcs")
        (slurp out));
  check_exit "stored counterexample replays" 0
    "mc --replay data/sync_no_threshold_n4.mcs"

(* ------------------------------------------------------------------ *)
(* dcount chaos *)

let test_chaos_check_ok () =
  check_exit "chaos --check on central" 0
    "chaos -c central -n 4 --crashes 0,1 --check";
  check_exit "chaos --check on quorum-majority" 0
    "chaos -c quorum-majority -n 5 --crashes 0,1,2 --check"

let test_chaos_plain_sweep () =
  check_exit "sweep without --check" 0 "chaos -c retire-tree -n 8 --crashes 0,1"

let test_chaos_recover () =
  check_exit "retire-ft --recover --check" 0
    "chaos -c retire-ft -n 8 --crashes 0,2 --recover --check";
  (* --recover output contract: rows report emergency retirements and
     actual revivals; the header echoes the flag. *)
  let out = Filename.concat tmp "dcount_cli_chaos_rec.txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Filename.quote dcount
          ^ " chaos -c retire-ft -n 8 --crashes 2 --recover --check > "
          ^ Filename.quote out ^ " 2>/dev/null")
      in
      Alcotest.(check int) "exit 0" 0 code;
      let s = In_channel.with_open_text out In_channel.input_all in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "recover flag echoed" true (contains "recover=true");
      Alcotest.(check bool) "revivals reported" true (contains "recovered="))

let test_chaos_durable () =
  (* The durable sweep's output contract: rows report WAL replays
     (replayed=) and the audited durable count instead of the amnesiac
     sweep's recovered=; --check asserts zero lost increments. Three
     victims at n = 4 guarantee the writer (p1) is among them, so at
     least one row actually replays. *)
  let out = Filename.concat tmp "dcount_cli_chaos_durable.txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Filename.quote dcount
          ^ " chaos --durable -n 4 --ops 40 --crashes 0,3 --recover --check \
             > "
          ^ Filename.quote out ^ " 2>/dev/null")
      in
      Alcotest.(check int) "exit 0" 0 code;
      let s = In_channel.with_open_text out In_channel.input_all in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "durable sweep header" true
        (contains "chaos sweep (durable)");
      Alcotest.(check bool) "WAL replays reported" true
        (contains "replayed=");
      Alcotest.(check bool) "audited durable count reported" true
        (contains "durable=");
      Alcotest.(check bool) "durable check line" true
        (contains "chaos check (durable): OK");
      Alcotest.(check bool) "no amnesiac recovered= note" false
        (contains "recovered="))

let test_chaos_byz_check () =
  (* The Byzantine sweep: sync-count must survive every b <= f budget,
     the guard-stripped control must split at every b >= 1 — both are
     --check verdicts with exit 0. *)
  check_exit "sync-count --byz --check" 0
    "chaos --byz -c sync-count -n 7 --check";
  check_exit "sync-no-threshold --byz --check" 0
    "chaos --byz -c sync-no-threshold -n 7 --check"

let test_chaos_byz_usage_errors () =
  (* Only byz-capable counters accept the sweep; --durable is a
     different engine entirely. *)
  check_exit "--byz on a hookless counter = exit 2" 2
    "chaos --byz -c retire-tree -n 8";
  check_exit "--byz --durable = exit 2" 2 "chaos --byz --durable -n 4"

let test_chaos_byz_output_shape () =
  let out = Filename.concat tmp "dcount_cli_chaos_byz.txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Filename.quote dcount
          ^ " chaos --byz -c sync-count -n 7 --byz-counts 0,2 --check > "
          ^ Filename.quote out ^ " 2>/dev/null")
      in
      Alcotest.(check int) "exit 0" 0 code;
      let s = In_channel.with_open_text out In_channel.input_all in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "byzantine sweep header" true
        (contains "chaos sweep (byzantine)");
      Alcotest.(check bool) "threshold column" true (contains "b<=f");
      Alcotest.(check bool) "corruption counts reported" true
        (contains "corrupted=");
      Alcotest.(check bool) "byzantine check line" true
        (contains "chaos check (byzantine): OK"))

let test_chaos_output_shape () =
  (* Smoke the stdout contract the docs quote: the check line and the
     baseline header must be present. *)
  let out = Filename.concat tmp "dcount_cli_chaos.txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Filename.quote dcount
          ^ " chaos -c central -n 4 --crashes 0 --check > "
          ^ Filename.quote out ^ " 2>/dev/null")
      in
      Alcotest.(check int) "exit 0" 0 code;
      let s = In_channel.with_open_text out In_channel.input_all in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "check line" true (contains "chaos check: OK");
      Alcotest.(check bool) "baseline line" true (contains "baseline:"))

(* ------------------------------------------------------------------ *)
(* dcount load *)

let test_load_check_passes () =
  (* Serialising and combining counters stay linearizable at the
     moderate-overlap rate; --check exits 0. *)
  check_exit "retire-tree --check" 0
    "load -c retire-tree -n 64 --rate 0.05 --ops 400 --seed 42 --check";
  check_exit "combining --check" 0
    "load -c combining -n 64 --rate 0.05 --ops 400 --seed 42 --check"

let test_load_check_fails_on_counting_net () =
  (* The negative control (docs/LOAD.md): the counting network's
     non-linearizability is observable at moderate overlap. *)
  check_exit "counting-net violation = exit 1" 1
    "load -c counting-net -n 64 --rate 0.05 --ops 1000 --seed 42 --check";
  (* Without --check the same run reports and exits 0. *)
  check_exit "no --check = exit 0" 0
    "load -c counting-net -n 64 --rate 0.05 --ops 1000 --seed 42"

let test_load_usage_errors () =
  check_exit "unknown counter = exit 2" 2 "load -c no-such-counter --check";
  check_exit "sequential-only counter = exit 2" 2 "load -c static-tree";
  check_exit "--rate and --arrivals together = exit 2" 2
    "load -c central --rate 1.0 --arrivals poisson:1.0";
  check_exit "bad arrivals grammar = exit 2" 2
    "load -c central --arrivals uniform:1";
  check_exit "non-positive rate = exit 2" 2 "load -c central --rate 0";
  check_exit "zero ops = exit 2" 2 "load -c central --ops 0";
  check_exit "zero sim-domains = exit 2" 2 "load -c central --sim-domains 0";
  check_exit "unknown flag = exit 2" 2 "load --no-such-flag"

let test_load_sim_domains_identical () =
  (* The open-loop report must be byte-identical across event-queue
     shard counts — the CLI face of the determinism matrix. *)
  let out d = Filename.concat tmp (Printf.sprintf "dcount_cli_load_%d.txt" d) in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun d -> try Sys.remove (out d) with Sys_error _ -> ())
        [ 1; 4 ])
    (fun () ->
      List.iter
        (fun d ->
          let code =
            Sys.command
              (Filename.quote dcount
              ^ Printf.sprintf
                  " load -c counting-net -n 64 --rate 2.0 --ops 500 --seed \
                   42 --sim-domains %d > %s 2>/dev/null"
                  d
                  (Filename.quote (out d)))
          in
          Alcotest.(check int) (Printf.sprintf "exit 0 at %d domains" d) 0 code)
        [ 1; 4 ];
      let slurp p = In_channel.with_open_text p In_channel.input_all in
      Alcotest.(check string)
        "reports identical across sim-domains" (slurp (out 1)) (slurp (out 4)))

(* ------------------------------------------------------------------ *)
(* dcount lint *)

let fixture name = "lint/fixtures/" ^ name

let test_lint_exit_codes () =
  check_exit "clean file = exit 0" 0 ("lint " ^ fixture "d1_good.ml");
  check_exit "findings = exit 1" 1 ("lint " ^ fixture "d1_bad.ml");
  check_exit "rule catalogue = exit 0" 0 "lint --list"

let test_lint_usage_errors () =
  check_exit "unknown rule = exit 2" 2
    ("lint --rules d9 " ^ fixture "d1_good.ml");
  check_exit "missing path = exit 2" 2 "lint no/such/path";
  (* The test binary itself is always present and is certainly not .ml. *)
  check_exit "non-.ml explicit file = exit 2" 2 "lint test_cli.exe"

let test_lint_rule_selection () =
  (* d1_bad only violates D1; selecting another rule must report clean. *)
  check_exit "other rule on d1_bad = exit 0" 0
    ("lint --rules d2 " ^ fixture "d1_bad.ml");
  check_exit "matching rule fires" 1 ("lint --rules d1 " ^ fixture "d1_bad.ml");
  (* family names expand: drace = R1,R2,R3 *)
  check_exit "drace family fires on r1_bad" 1
    ("lint --rules drace " ^ fixture "r1_bad.ml");
  check_exit "drace family clean on r1_good" 0
    ("lint --rules drace " ^ fixture "r1_good.ml");
  check_exit "other family clean on r1_bad" 0
    ("lint --rules determinism " ^ fixture "r1_bad.ml")

let test_lint_json_format () =
  let out = Filename.concat tmp "dcount_cli_lint.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Filename.quote dcount ^ " lint --format json "
          ^ fixture "d2_bad.ml" ^ " > " ^ Filename.quote out ^ " 2>/dev/null")
      in
      Alcotest.(check int) "findings = exit 1" 1 code;
      let s = In_channel.with_open_text out In_channel.input_all in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i =
          i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        "json payload names the rule" true
        (contains "\"D2\"");
      Alcotest.(check bool)
        "json payload carries the schema version" true
        (contains "\"schema\": \"dcount-lint/2\"");
      Alcotest.(check bool)
        "each diagnostic names its family" true
        (contains "\"family\": \"determinism\""))

(* Usage errors exit 2 on every subcommand — including flags cmdliner
   itself rejects, which it would otherwise report as 124. *)
let test_usage_errors_exit_2 () =
  check_exit "lint: bad --format = exit 2" 2
    ("lint --format bogus " ^ fixture "d1_good.ml");
  check_exit "lint: unknown flag = exit 2" 2 "lint --no-such-flag";
  check_exit "mc: unknown flag = exit 2" 2 "mc --no-such-flag";
  check_exit "chaos: unknown flag = exit 2" 2 "chaos --no-such-flag";
  check_exit "unknown subcommand = exit 2" 2 "frobnicate"

(* ------------------------------------------------------------------ *)
(* shared plumbing *)

let test_unknown_counter_rejected () =
  let mc = run "mc -c no-such-counter -n 3" in
  let chaos = run "chaos -c no-such-counter --check" in
  Alcotest.(check bool) "mc rejects" true (mc <> 0);
  Alcotest.(check bool) "chaos rejects" true (chaos <> 0)

let () =
  (* The binary must exist: it is a declared dune dep, so a miss means
     the stanza wiring broke. *)
  if not (Sys.file_exists dcount) then
    failwith ("dcount binary not found at " ^ dcount);
  Alcotest.run "cli"
    [
      ( "mc",
        [
          Alcotest.test_case "exhausted ok" `Quick test_mc_exhausted_ok;
          Alcotest.test_case "explicit schedule" `Quick
            test_mc_explicit_schedule;
          Alcotest.test_case "violation codes" `Quick
            test_mc_violation_exit_codes;
          Alcotest.test_case "budget code" `Quick test_mc_budget_exit_code;
          Alcotest.test_case "replay stored" `Quick test_mc_replay_stored;
          Alcotest.test_case "replay bad file" `Quick test_mc_replay_bad_file;
          Alcotest.test_case "counterexample round trip" `Quick
            test_mc_counterexample_round_trip;
          Alcotest.test_case "--all table" `Quick test_mc_all_table;
          Alcotest.test_case "prune modes" `Quick test_mc_prune_none;
          Alcotest.test_case "probabilistic rejected" `Quick
            test_mc_probabilistic_faults_rejected;
          Alcotest.test_case "crash faults" `Quick test_mc_crash_faults;
          Alcotest.test_case "retire-ft bounded" `Quick test_mc_retire_ft;
          Alcotest.test_case "ft-no-handoff stored" `Quick
            test_mc_ft_no_handoff_stored;
          Alcotest.test_case "durable" `Quick test_mc_durable;
          Alcotest.test_case "durable-no-cas stored" `Quick
            test_mc_durable_no_cas_stored;
          Alcotest.test_case "byz --property codes" `Quick test_mc_byz_property;
          Alcotest.test_case "byz usage errors" `Quick test_mc_byz_usage_errors;
          Alcotest.test_case "sync-no-threshold stored" `Quick
            test_mc_sync_no_threshold_stored;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "--check ok" `Quick test_chaos_check_ok;
          Alcotest.test_case "plain sweep" `Quick test_chaos_plain_sweep;
          Alcotest.test_case "--recover" `Quick test_chaos_recover;
          Alcotest.test_case "--durable" `Quick test_chaos_durable;
          Alcotest.test_case "--byz check" `Quick test_chaos_byz_check;
          Alcotest.test_case "--byz usage errors" `Quick
            test_chaos_byz_usage_errors;
          Alcotest.test_case "--byz output shape" `Quick
            test_chaos_byz_output_shape;
          Alcotest.test_case "output shape" `Quick test_chaos_output_shape;
        ] );
      ( "load",
        [
          Alcotest.test_case "--check passes" `Quick test_load_check_passes;
          Alcotest.test_case "--check negative control" `Quick
            test_load_check_fails_on_counting_net;
          Alcotest.test_case "usage errors" `Quick test_load_usage_errors;
          Alcotest.test_case "sim-domains identical" `Quick
            test_load_sim_domains_identical;
        ] );
      ( "lint",
        [
          Alcotest.test_case "exit codes" `Quick test_lint_exit_codes;
          Alcotest.test_case "usage errors" `Quick test_lint_usage_errors;
          Alcotest.test_case "rule selection" `Quick test_lint_rule_selection;
          Alcotest.test_case "json format" `Quick test_lint_json_format;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "unknown counter" `Quick
            test_unknown_counter_rejected;
          Alcotest.test_case "usage errors exit 2" `Quick
            test_usage_errors_exit_2;
        ] );
    ]
