(* Tests for the exhaustive-order verifier — including the full 40320
   -order sweep at k = 2 (a `Slow test; ~2 s). *)

let check = Alcotest.check

module E = Core.Exhaustive

let test_permutations_count () =
  check Alcotest.int "4! = 24" 24 (Seq.length (E.permutations 4));
  check Alcotest.int "1" 1 (Seq.length (E.permutations 1));
  check Alcotest.int "0! = 1" 1 (Seq.length (E.permutations 0))

let test_permutations_lexicographic_and_distinct () =
  let perms = List.of_seq (E.permutations 4) in
  (* First and last in lexicographic order. *)
  Alcotest.(check (list int)) "first" [ 1; 2; 3; 4 ] (List.hd perms);
  Alcotest.(check (list int)) "last" [ 4; 3; 2; 1 ]
    (List.nth perms (List.length perms - 1));
  (* All distinct, all permutations of 1..4. *)
  check Alcotest.int "distinct" 24
    (List.length (List.sort_uniq compare perms));
  List.iter
    (fun p ->
      Alcotest.(check (list int)) "is a permutation" [ 1; 2; 3; 4 ]
        (List.sort compare p))
    perms

let test_permutations_sorted_sequence () =
  let perms = List.of_seq (E.permutations 5) in
  Alcotest.(check bool) "lexicographically increasing" true
    (List.sort compare perms = perms)

let test_permutations_cap () =
  (* n! blows up past max_permutation_n = 9; the guard must fire before
     any element is forced, and the boundary cases must still work. *)
  check Alcotest.int "cap is 9" 9 E.max_permutation_n;
  (match Seq.is_empty (E.permutations 10) with
  | exception Invalid_argument msg ->
      let contains needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i =
          i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "message names the offending n" true
        (contains "10");
      Alcotest.(check bool) "message points at verify_counter ~limit" true
        (contains "~limit")
  | _ -> Alcotest.fail "n = 10 must raise Invalid_argument");
  (match Seq.is_empty (E.permutations 100) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 100 must raise Invalid_argument");
  (match Seq.is_empty (E.permutations (-1)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative n must raise Invalid_argument");
  (* At the cap the sequence is still lazy and usable: take a prefix of
     9! without forcing all 362880 elements. *)
  let first = E.permutations E.max_permutation_n |> Seq.take 3 |> List.of_seq in
  check Alcotest.int "prefix of 9! available" 3 (List.length first);
  Alcotest.(check (list int))
    "first is identity" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.hd first)

let test_limit_bypasses_cap () =
  (* The public cap does not break bounded sweeps above it:
     verify_counter ~limit samples a lexicographic prefix of 10!. *)
  let s = E.verify_counter ~limit:25 Baselines.Registry.central ~n:10 in
  check Alcotest.int "orders" 25 s.E.orders;
  Alcotest.(check bool) "correct" true s.E.all_correct

let test_limited_verification () =
  let s = E.verify_counter ~limit:100 Baselines.Registry.retire_tree ~n:8 in
  check Alcotest.int "orders" 100 s.E.orders;
  Alcotest.(check bool) "correct" true s.E.all_correct;
  Alcotest.(check bool) "hotspot" true s.E.all_hotspot;
  Alcotest.(check bool) "bound" true s.E.all_bound;
  Alcotest.(check bool) "ranges sane" true
    (s.E.min_bottleneck <= s.E.max_bottleneck
    && s.E.min_messages <= s.E.max_messages)

let test_big_n_requires_limit () =
  match E.verify_counter Baselines.Registry.central ~n:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected guard"

let test_full_sweep_retire_tree () =
  (* Every one of the 40320 each-once orders at the paper's k = 2 design
     point: correct values, Hot Spot Lemma, and the lower bound, with no
     sampling gap. *)
  let s = E.verify_counter Baselines.Registry.retire_tree ~n:8 in
  check Alcotest.int "all orders" 40320 s.E.orders;
  Alcotest.(check bool) "all correct" true s.E.all_correct;
  Alcotest.(check bool) "hotspot everywhere" true s.E.all_hotspot;
  Alcotest.(check bool) "bound everywhere" true s.E.all_bound;
  (* Even the most favourable order keeps the bottleneck well above k:
     the lower bound is comfortably non-vacuous. *)
  Alcotest.(check bool)
    (Printf.sprintf "best case %d >= k" s.E.min_bottleneck)
    true
    (s.E.min_bottleneck >= Core.Lower_bound.k_of_n 8)

let test_full_sweep_central () =
  let s = E.verify_counter Baselines.Registry.central ~n:8 in
  check Alcotest.int "all orders" 40320 s.E.orders;
  Alcotest.(check bool) "all correct" true s.E.all_correct;
  (* The holder's load is schedule-independent: 2(n-1) on every order. *)
  check Alcotest.int "min = max bottleneck" s.E.min_bottleneck
    s.E.max_bottleneck;
  check Alcotest.int "= 2(n-1)" 14 s.E.max_bottleneck

let () =
  Alcotest.run "exhaustive"
    [
      ( "permutations",
        [
          Alcotest.test_case "count" `Quick test_permutations_count;
          Alcotest.test_case "lexicographic distinct" `Quick
            test_permutations_lexicographic_and_distinct;
          Alcotest.test_case "sorted sequence" `Quick
            test_permutations_sorted_sequence;
          Alcotest.test_case "factorial cap" `Quick test_permutations_cap;
          Alcotest.test_case "~limit bypasses cap" `Quick
            test_limit_bypasses_cap;
        ] );
      ( "verification",
        [
          Alcotest.test_case "limited sweep" `Quick test_limited_verification;
          Alcotest.test_case "big n guard" `Quick test_big_n_requires_limit;
          Alcotest.test_case "FULL sweep: retire tree" `Slow
            test_full_sweep_retire_tree;
          Alcotest.test_case "FULL sweep: central" `Slow test_full_sweep_central;
        ] );
    ]
