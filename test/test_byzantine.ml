(* Adversarial battery for the Byzantine fault layer and the phase-king
   synchronous-counting baseline (docs/FAULTS.md).

   Structure:
   - grammar: byz/byzval/byzeq round-trips, canonical clause order,
     plan-static validation rejections, qcheck string-level fixpoints
     for plans carrying Byzantine clauses;
   - rewrite semantics: Fault.apply_rule unit truths and network-level
     delivery — an equivocating sender shows receiver-id-parity-split
     values, corruption charges land in Metrics, a rule-less byz clause
     turns the marker without touching payloads;
   - the f < n/3 contract: sync-count completes every operation with
     exact values when b = (n - 1) / 3 kings are turned (all rules,
     equivocation included), across n = 4 .. 13;
   - over-threshold witnesses: concrete b > f plans whose agreement
     violation is deterministic, at n = 4 and n = 7 — the boundary is
     real, not slack;
   - the sync-no-threshold control: split by a single equivocating last
     king at b = 1 <= f, proving the round-3 threshold guard (the only
     difference between the two counters) is load-bearing;
   - Fault.none discipline: a sync-count run with the empty plan is
     bit-identical to one with no plan at all, and the guard-off control
     is bit-identical to sync-count when no one lies. *)

let check = Alcotest.check

let plan s =
  match Sim.Fault.of_string s with
  | Ok f -> f
  | Error e -> Alcotest.failf "plan %S rejected: %s" s e

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Grammar *)

let test_byz_round_trips () =
  List.iter
    (fun s ->
      check Alcotest.string
        (Printf.sprintf "canonical %S" s)
        s
        (Sim.Fault.to_string (plan s)))
    [
      "byz:3@1.5";
      "byz:2@#10";
      "byz:3@1.5/byzval:3:replay-stale";
      "byz:3@0/byzval:3:off-by-2/byzeq:3";
      "byz:4@0/byzval:4:off-by--3";
      "byz:7@#25/byzval:7:max-int";
      "byz:1@0/byz:2@#5/byzval:1:max-int/byzval:2:off-by-7/byzeq:2";
      "crash:1@2/drop:0.1/byz:3@1/byzval:3:max-int";
      "crash:3@1.5/recover:3@9/part:1-4@2,10/byz:5@3/byzval:5:replay-stale/byzeq:5";
    ]

let test_byz_parse_structure () =
  let f = plan "byz:1@0/byz:2@#5/byzval:1:max-int/byzval:2:off-by-7/byzeq:2" in
  check Alcotest.bool "byz_active" true (Sim.Fault.byz_active f);
  check Alcotest.int "byz_count" 2 (Sim.Fault.byz_count f);
  check
    Alcotest.(list int)
    "byzantine_processors ascending" [ 1; 2 ]
    (Sim.Fault.byzantine_processors f);
  check Alcotest.bool "rule of 1" true
    (Sim.Fault.byz_rule_of f 1 = Some Sim.Fault.Max_int);
  check Alcotest.bool "rule of 2" true
    (Sim.Fault.byz_rule_of f 2 = Some (Sim.Fault.Off_by 7));
  check Alcotest.bool "rule of 3 absent" true
    (Sim.Fault.byz_rule_of f 3 = None);
  check Alcotest.bool "2 equivocates" true (Sim.Fault.equivocates f 2);
  check Alcotest.bool "1 does not" false (Sim.Fault.equivocates f 1);
  (* byz clauses do not count as crashes: the two victim populations are
     disjoint dimensions of a plan. *)
  check Alcotest.int "no crashes" 0 (Sim.Fault.crash_count f);
  check Alcotest.bool "not is_none" false (Sim.Fault.is_none f)

let test_byz_rejects () =
  List.iter
    (fun s ->
      match Sim.Fault.of_string s with
      | Ok _ -> Alcotest.failf "plan %S should have been rejected" s
      | Error _ -> ())
    [
      "byz:0@1";
      "byz:3";
      "byz:3@-2";
      "byz:3@1/byz:3@2";
      "byzval:3:off-by-1";
      "byz:3@1/byzval:4:off-by-1";
      "byz:3@1/byzval:3:off-by-0";
      "byz:3@1/byzval:3:bogus";
      "byz:3@1/byzval:3:max-int/byzval:3:replay-stale";
      "byzeq:3";
      "byz:3@1/byzeq:3";
      "byz:3@1/byzval:3:max-int/byzeq:4";
      "byz:3@1/byzval:3:max-int/byzeq:3/byzeq:3";
    ]

(* The validation errors name the broken clause — a plan author fixing a
   typo should not have to bisect the string. *)
let test_byz_reject_messages () =
  let err s =
    match Sim.Fault.of_string s with
    | Ok _ -> Alcotest.failf "plan %S should have been rejected" s
    | Error e -> e
  in
  check Alcotest.bool "byzval without byz names the processor" true
    (contains ~sub:"byzval:4" (err "byz:3@1/byzval:4:off-by-1"));
  check Alcotest.bool "off-by-0 names the offset" true
    (contains ~sub:"non-zero" (err "byz:3@1/byzval:3:off-by-0"));
  check Alcotest.bool "byzeq without rule says so" true
    (contains ~sub:"byzval" (err "byz:3@1/byzeq:3"))

(* ------------------------------------------------------------------ *)
(* QCheck: string-level round-trip fixpoints for plans with Byzantine
   clauses (the crash/drop/store dimensions have theirs in
   test_fault.ml). Victims are distinct by construction; rules and
   equivocation are drawn per victim, byzeq only where a rule exists —
   mirroring what validate admits. *)

let gen_byz_plan =
  let open QCheck.Gen in
  let gen_trigger =
    oneof
      [
        map (fun t -> Sim.Fault.At (float_of_int t /. 4.)) (int_bound 400);
        map (fun d -> Sim.Fault.After d) (int_bound 10_000);
      ]
  in
  let gen_rule =
    oneof
      [
        return Sim.Fault.Replay_stale;
        map
          (fun k -> Sim.Fault.Off_by (if k >= 0 then k + 1 else k))
          (int_range (-16) 16);
        return Sim.Fault.Max_int;
      ]
  in
  int_range 1 5 >>= fun count ->
  (* distinct victim ids: a permutation prefix of 1..9 *)
  let rec pick acc k st =
    if k = 0 then acc
    else
      let p = int_range 1 9 st in
      if List.mem p acc then pick acc k st else pick (p :: acc) (k - 1) st
  in
  (fun st -> pick [] count st) >>= fun victims ->
  flatten_l
    (List.map
       (fun p ->
         gen_trigger >>= fun trigger ->
         bool >>= fun has_rule ->
         (if has_rule then map (fun r -> Some r) gen_rule else return None)
         >>= fun rule ->
         bool >>= fun eq ->
         return
           ( { Sim.Fault.processor = p; trigger },
             Option.map (fun r -> (p, r)) rule,
             (* equivocation needs a rewrite rule to vary *)
             if eq && rule <> None then Some p else None ))
       victims)
  >>= fun cells ->
  return
    {
      Sim.Fault.none with
      Sim.Fault.byz = List.map (fun (b, _, _) -> b) cells;
      byz_rules = List.filter_map (fun (_, r, _) -> r) cells;
      byz_equiv = List.filter_map (fun (_, _, e) -> e) cells;
    }

let qcheck_byz_round_trip =
  QCheck.Test.make ~name:"byz plans round-trip to_string" ~count:500
    (QCheck.make ~print:Sim.Fault.to_string gen_byz_plan)
    (fun f ->
      let s = Sim.Fault.to_string f in
      match Sim.Fault.of_string s with
      | Error e -> QCheck.Test.fail_reportf "of_string %S failed: %s" s e
      | Ok f' -> String.equal s (Sim.Fault.to_string f'))

(* ------------------------------------------------------------------ *)
(* Rewrite semantics *)

let test_apply_rule () =
  let apply = Sim.Fault.apply_rule in
  check Alcotest.int "replay-stale" 0
    (apply ~rule:Sim.Fault.Replay_stale ~equivocate:false ~dst:2 41);
  check Alcotest.int "off-by adds" 48
    (apply ~rule:(Sim.Fault.Off_by 7) ~equivocate:false ~dst:2 41);
  check Alcotest.int "off-by negative" 38
    (apply ~rule:(Sim.Fault.Off_by (-3)) ~equivocate:false ~dst:2 41);
  check Alcotest.int "max-int sentinel" Sim.Fault.byz_sentinel
    (apply ~rule:Sim.Fault.Max_int ~equivocate:false ~dst:2 41);
  (* Equivocation: odd receivers see the other face. *)
  check Alcotest.int "eq replay, odd dst sees truth" 41
    (apply ~rule:Sim.Fault.Replay_stale ~equivocate:true ~dst:3 41);
  check Alcotest.int "eq replay, even dst sees 0" 0
    (apply ~rule:Sim.Fault.Replay_stale ~equivocate:true ~dst:4 41);
  check Alcotest.int "eq off-by, odd dst subtracts" 34
    (apply ~rule:(Sim.Fault.Off_by 7) ~equivocate:true ~dst:3 41);
  check Alcotest.int "eq off-by, even dst adds" 48
    (apply ~rule:(Sim.Fault.Off_by 7) ~equivocate:true ~dst:4 41);
  check Alcotest.int "eq max-int, odd dst sees 0" 0
    (apply ~rule:Sim.Fault.Max_int ~equivocate:true ~dst:3 41);
  check Alcotest.int "eq max-int, even dst sees sentinel"
    Sim.Fault.byz_sentinel
    (apply ~rule:Sim.Fault.Max_int ~equivocate:true ~dst:4 41)

(* A star broadcast from a turned processor: the corrupt hook rewrites
   the integer payload per receiver, charges Metrics.corruptions, and
   delivery order stays deterministic. *)
let corrupt_int ~rule ~equivocate ~src:_ ~dst v =
  let v' = Sim.Fault.apply_rule ~rule ~equivocate ~dst v in
  if v' = v then v else v'

let test_equivocation_delivery () =
  let n = 5 in
  let faults = plan "byz:1@0/byzval:1:off-by-10/byzeq:1" in
  let net = Sim.Network.create ~faults ~corrupt:corrupt_int ~n () in
  let got = Array.make (n + 1) 0 in
  Sim.Network.set_handler net (fun ~self ~src:_ v -> got.(self) <- v);
  check Alcotest.bool "turned at create (At 0)" true
    (Sim.Network.byzantine net 1);
  for dst = 2 to n do
    Sim.Network.send net ~src:1 ~dst 100
  done;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "even receiver sees v+10" 110 got.(2);
  check Alcotest.int "odd receiver sees v-10" 90 got.(3);
  check Alcotest.int "even receiver sees v+10" 110 got.(4);
  check Alcotest.int "odd receiver sees v-10" 90 got.(5);
  let m = Sim.Network.metrics net in
  check Alcotest.int "four corruptions charged" 4
    (Sim.Metrics.corruptions m);
  check Alcotest.int "one Byzantine turn" 1 (Sim.Metrics.byzantine m)

(* Honest senders pass through the hook untouched, and a byz clause
   without a byzval rule turns the marker but rewrites nothing — the
   "detection overhead" configuration. *)
let test_no_rule_sends_honest () =
  let faults = plan "byz:1@0" in
  let net = Sim.Network.create ~faults ~corrupt:corrupt_int ~n:3 () in
  let got = Array.make 4 (-1) in
  Sim.Network.set_handler net (fun ~self ~src:_ v -> got.(self) <- v);
  Sim.Network.send net ~src:1 ~dst:2 100;
  Sim.Network.send net ~src:3 ~dst:1 200;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "turned sender delivered honestly" 100 got.(2);
  check Alcotest.int "honest sender unaffected" 200 got.(1);
  let m = Sim.Network.metrics net in
  check Alcotest.int "no corruption charged" 0 (Sim.Metrics.corruptions m);
  check Alcotest.int "turn still counted" 1 (Sim.Metrics.byzantine m)

(* A byzval plan on a network without a corrupt hook is a typed refusal,
   not a silently-honest run. *)
let test_byzval_needs_hook () =
  let faults = plan "byz:1@0/byzval:1:max-int" in
  match Sim.Network.create ~faults ~n:3 () with
  | (_ : int Sim.Network.t) ->
      Alcotest.fail "byzval plan without corrupt hook accepted"
  | exception Invalid_argument _ -> ()

(* The delivery-count trigger byz:P@#D turns the victim mid-run: sends
   before the horizon are honest, sends after it are rewritten. *)
let test_after_trigger_turns_mid_run () =
  let faults = plan "byz:1@#2/byzval:1:off-by-5" in
  let net = Sim.Network.create ~faults ~corrupt:corrupt_int ~n:3 () in
  let log = ref [] in
  Sim.Network.set_handler net (fun ~self ~src:_ v ->
      log := (self, v) :: !log;
      (* after the first two deliveries the sender is turned *)
      if List.length !log < 4 && self = 2 then
        Sim.Network.send net ~src:1 ~dst:3 (v + 1));
  Sim.Network.send net ~src:1 ~dst:2 10;
  Sim.Network.send net ~src:1 ~dst:2 20;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.bool "not yet turned at create" true
    (List.mem (2, 10) !log);
  check Alcotest.bool "turned after horizon" true
    (Sim.Network.byzantine net 1);
  check Alcotest.bool "post-horizon send rewritten" true
    (List.exists (fun (p, v) -> p = 3 && v >= 16) !log)

(* ------------------------------------------------------------------ *)
(* The f < n/3 contract. Victim choice mirrors dcount chaos --byz: the
   kings, last king first (the strongest seats), rules cycling
   off-by-7 / max-int / replay-stale, every second victim equivocating. *)

let king_plan ~n ~b =
  let f = (n - 1) / 3 in
  let rules =
    [| Sim.Fault.Off_by 7; Sim.Fault.Max_int; Sim.Fault.Replay_stale |]
  in
  let victims = List.init (min b (f + 1)) (fun i -> f + 1 - i) in
  {
    Sim.Fault.none with
    Sim.Fault.byz =
      List.map
        (fun p -> { Sim.Fault.processor = p; trigger = Sim.Fault.At 0. })
        victims;
    byz_rules = List.mapi (fun i p -> (p, rules.(i mod 3))) victims;
    byz_equiv = List.filteri (fun i _ -> i mod 2 = 0) victims;
  }

let run_ops ~inc_result ~n ~ops =
  let values = ref [] and stalls = ref [] in
  let origin = ref 0 in
  for _ = 1 to ops do
    origin := (!origin mod n) + 1;
    match inc_result ~origin:!origin with
    | Counter.Counter_intf.Completed v -> values := v :: !values
    | Counter.Counter_intf.Stalled reason -> stalls := reason :: !stalls
  done;
  (List.rev !values, List.rev !stalls)

let test_completion_matrix () =
  List.iter
    (fun n ->
      let f = (n - 1) / 3 in
      let module C = Core.Sync_counter in
      let c = C.create ~faults:(king_plan ~n ~b:f) ~n ~seed:42 () in
      check Alcotest.int
        (Printf.sprintf "n=%d: resilience" n)
        f (C.resilience c);
      check Alcotest.int
        (Printf.sprintf "n=%d: phases" n)
        (f + 1) (C.phases c);
      let ops = 2 * n in
      let values, stalls = run_ops ~inc_result:(C.inc_result c) ~n ~ops in
      check Alcotest.int
        (Printf.sprintf "n=%d b=f=%d: all ops complete" n f)
        ops (List.length values);
      check Alcotest.(list string) (Printf.sprintf "n=%d: no stalls" n) []
        stalls;
      (* Values are exact: the turned kings could not skew the count. *)
      List.iteri
        (fun i v ->
          check Alcotest.int (Printf.sprintf "n=%d: value %d" n i) i v)
        values;
      check Alcotest.int
        (Printf.sprintf "n=%d: completed count" n)
        ops (C.value c))
    [ 4; 7; 10; 13 ]

(* Per-rule isolation at n = 7, b = f = 2: each rule survives alone,
   equivocating and not. *)
let test_per_rule_matrix () =
  let n = 7 and ops = 7 in
  List.iter
    (fun (rule, eq) ->
      let faults =
        {
          Sim.Fault.none with
          Sim.Fault.byz =
            [
              { Sim.Fault.processor = 3; trigger = Sim.Fault.At 0. };
              { Sim.Fault.processor = 2; trigger = Sim.Fault.At 0. };
            ];
          byz_rules = [ (3, rule); (2, rule) ];
          byz_equiv = (if eq then [ 3; 2 ] else []);
        }
      in
      let module C = Core.Sync_counter in
      let c = C.create ~faults ~n ~seed:7 () in
      let values, stalls = run_ops ~inc_result:(C.inc_result c) ~n ~ops in
      let label =
        Printf.sprintf "rule=%s eq=%b"
          (match rule with
          | Sim.Fault.Replay_stale -> "replay-stale"
          | Sim.Fault.Off_by k -> Printf.sprintf "off-by-%d" k
          | Sim.Fault.Max_int -> "max-int")
          eq
      in
      check Alcotest.int (label ^ ": all complete") ops (List.length values);
      check Alcotest.(list string) (label ^ ": no stalls") [] stalls)
    [
      (Sim.Fault.Replay_stale, false);
      (Sim.Fault.Replay_stale, true);
      (Sim.Fault.Off_by 9, false);
      (Sim.Fault.Off_by 9, true);
      (Sim.Fault.Max_int, false);
      (Sim.Fault.Max_int, true);
    ]

(* ------------------------------------------------------------------ *)
(* Over-threshold witnesses: concrete b > f plans that deterministically
   split the correct replicas — the n > 3f hypothesis is tight here, not
   slack. Both kings equivocating with distinct offsets (n = 4) and all
   three kings shifting with the last equivocating (n = 7) defeat the
   round-2 threshold in every phase, so the final king's split sticks. *)

let expect_agreement_violation ~n ~plan_s =
  let module C = Core.Sync_counter in
  let c = C.create ~faults:(plan plan_s) ~n ~seed:42 () in
  let values, stalls = run_ops ~inc_result:(C.inc_result c) ~n ~ops:n in
  check Alcotest.bool
    (Printf.sprintf "n=%d: some operation stalls" n)
    true (stalls <> []);
  ignore values;
  List.iter
    (fun reason ->
      check Alcotest.bool
        (Printf.sprintf "n=%d: stall is the agreement oracle (%s)" n reason)
        true
        (contains ~sub:"agreement" reason))
    stalls

let test_over_threshold_witnesses () =
  expect_agreement_violation ~n:4
    ~plan_s:"byz:1@0/byzval:1:off-by-3/byzeq:1/byz:2@0/byzval:2:off-by-5/byzeq:2";
  expect_agreement_violation ~n:7
    ~plan_s:
      "byz:1@0/byzval:1:off-by-7/byz:2@0/byzval:2:off-by-7/byz:3@0/byzval:3:off-by-7/byzeq:3"

(* ------------------------------------------------------------------ *)
(* The sync-no-threshold control: one equivocating last king at
   b = 1 <= f splits it — the guard is the only thing standing between
   the protocol and the oracle. The same plan leaves sync-count exact. *)

let test_control_splits_under_guarded_budget () =
  let n = 7 in
  let last_king_plan = "byz:3@0/byzval:3:off-by-1/byzeq:3" in
  let module B = Baselines.Sync_no_threshold in
  let b = B.create ~faults:(plan last_king_plan) ~n ~seed:42 () in
  let _, stalls = run_ops ~inc_result:(B.inc_result b) ~n ~ops:n in
  check Alcotest.bool "control stalls" true (stalls <> []);
  check Alcotest.bool "control stall is agreement" true
    (List.for_all (contains ~sub:"agreement") stalls);
  let module C = Core.Sync_counter in
  let c = C.create ~faults:(plan last_king_plan) ~n ~seed:42 () in
  let values, stalls = run_ops ~inc_result:(C.inc_result c) ~n ~ops:n in
  check Alcotest.(list string) "guarded counter clean" [] stalls;
  check Alcotest.int "guarded counter exact" n (List.length values)

(* ------------------------------------------------------------------ *)
(* Fault.none discipline: the Byzantine machinery must cost nothing and
   change nothing when no plan arms it. (The pinned golden numbers and
   the shard matrix live in test_determinism.ml.) *)

let sync_metrics ?faults ~guard ~n ~seed () =
  let module C = Core.Sync_counter in
  let c = C.create_with ?faults ~guard ~n ~seed () in
  for o = 1 to n do
    ignore (C.inc c ~origin:o)
  done;
  C.metrics c

let test_fault_none_bit_identical () =
  let n = 7 and seed = 42 in
  let base = sync_metrics ~guard:true ~n ~seed () in
  let with_none =
    sync_metrics ~faults:Sim.Fault.none ~guard:true ~n ~seed ()
  in
  check Alcotest.int "Fault.none checksum identical"
    (Sim.Metrics.checksum base)
    (Sim.Metrics.checksum with_none);
  Alcotest.(check (array int))
    "Fault.none load vector identical"
    (Sim.Metrics.load_array base)
    (Sim.Metrics.load_array with_none);
  (* The guard only matters when someone lies: fault-free, the control
     is message-for-message the same protocol. *)
  let unguarded = sync_metrics ~guard:false ~n ~seed () in
  check Alcotest.int "guard-off checksum identical fault-free"
    (Sim.Metrics.checksum base)
    (Sim.Metrics.checksum unguarded)

let () =
  Alcotest.run "byzantine"
    [
      ( "grammar",
        [
          Alcotest.test_case "byz round-trips" `Quick test_byz_round_trips;
          Alcotest.test_case "byz structure" `Quick test_byz_parse_structure;
          Alcotest.test_case "rejects malformed" `Quick test_byz_rejects;
          Alcotest.test_case "rejection messages name clauses" `Quick
            test_byz_reject_messages;
          QCheck_alcotest.to_alcotest qcheck_byz_round_trip;
        ] );
      ( "rewrite semantics",
        [
          Alcotest.test_case "apply_rule truths" `Quick test_apply_rule;
          Alcotest.test_case "equivocation splits by parity" `Quick
            test_equivocation_delivery;
          Alcotest.test_case "rule-less byz sends honest" `Quick
            test_no_rule_sends_honest;
          Alcotest.test_case "byzval needs the hook" `Quick
            test_byzval_needs_hook;
          Alcotest.test_case "delivery-count trigger turns mid-run" `Quick
            test_after_trigger_turns_mid_run;
        ] );
      ( "f < n/3",
        [
          Alcotest.test_case "completion matrix n=4..13, b=f kings" `Quick
            test_completion_matrix;
          Alcotest.test_case "per-rule matrix at n=7" `Quick
            test_per_rule_matrix;
        ] );
      ( "threshold is tight",
        [
          Alcotest.test_case "b>f witnesses violate agreement" `Quick
            test_over_threshold_witnesses;
          Alcotest.test_case "control splits where the guard holds" `Quick
            test_control_splits_under_guarded_budget;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "Fault.none bit-identical" `Quick
            test_fault_none_bit_identical;
        ] );
    ]
