(* Tests for the deterministic object store (Sim.Store):

   - apply semantics: read-after-write, CAS including expect-None
     creation and conflicts carrying the actual current value,
     lexicographically sorted list-by-prefix, idempotent delete;
   - the mutation monitor fires with the correct prev/next on every
     applied mutation and never on reads or failed CAS;
   - serve's fault hooks: sdrop loses whole request or response legs,
     sdup duplicates responses, sslow asks the caller to delay, sout
     answers Unavailable inside the window — all charged to stats and
     none of them active under Fault.none. *)

let check = Alcotest.check

module S = Sim.Store

let plan s =
  match Sim.Fault.of_string s with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad plan %S: %s" s e

(* ------------------------------------------------------------------ *)
(* apply semantics                                                     *)

let test_get_put_roundtrip () =
  let t = S.create () in
  (match S.apply t (S.Get "k") with
  | S.Value None -> ()
  | _ -> Alcotest.fail "fresh store should miss");
  (match S.apply t (S.Put { key = "k"; value = "v1" }) with
  | S.Written -> ()
  | _ -> Alcotest.fail "put should write");
  (match S.apply t (S.Get "k") with
  | S.Value (Some v) -> check Alcotest.string "read-after-write" "v1" v
  | _ -> Alcotest.fail "get after put should hit");
  check Alcotest.(option string) "find mirrors get" (Some "v1") (S.find t "k")

let test_cas_create_and_conflict () =
  let t = S.create () in
  (* expect None = create-if-absent *)
  (match S.apply t (S.Cas { key = "k"; expect = None; value = "a" }) with
  | S.Written -> ()
  | _ -> Alcotest.fail "CAS expect-None on absent key should write");
  (* same expect again: conflict, carrying the actual value *)
  (match S.apply t (S.Cas { key = "k"; expect = None; value = "b" }) with
  | S.Conflict (Some cur) -> check Alcotest.string "current value" "a" cur
  | _ -> Alcotest.fail "CAS expect-None on present key should conflict");
  (* correct expect advances *)
  (match S.apply t (S.Cas { key = "k"; expect = Some "a"; value = "b" }) with
  | S.Written -> ()
  | _ -> Alcotest.fail "CAS with matching expect should write");
  (* stale expect conflicts *)
  (match S.apply t (S.Cas { key = "k"; expect = Some "a"; value = "c" }) with
  | S.Conflict (Some cur) -> check Alcotest.string "current value" "b" cur
  | _ -> Alcotest.fail "CAS with stale expect should conflict");
  (* expect Some on absent key conflicts with None *)
  (match S.apply t (S.Cas { key = "gone"; expect = Some "x"; value = "y" }) with
  | S.Conflict None -> ()
  | _ -> Alcotest.fail "CAS expecting content on absent key: Conflict None");
  let s = S.stats t in
  check Alcotest.int "cas_ok" 2 s.S.cas_ok;
  check Alcotest.int "cas_conflict" 3 s.S.cas_conflict

let test_list_sorted_by_prefix () =
  let t = S.create () in
  List.iter
    (fun (k, v) -> ignore (S.apply t (S.Put { key = k; value = v })))
    [
      ("chunk.000002", "c2");
      ("manifest", "m");
      ("chunk.000000", "c0");
      ("snap.000000010", "s");
      ("chunk.000001", "c1");
    ];
  (match S.apply t (S.List "chunk.") with
  | S.Keys ks ->
      Alcotest.(check (list string))
        "ascending, prefix only"
        [ "chunk.000000"; "chunk.000001"; "chunk.000002" ]
        ks
  | _ -> Alcotest.fail "list should answer keys");
  (match S.apply t (S.List "") with
  | S.Keys ks -> check Alcotest.int "empty prefix lists all" 5 (List.length ks)
  | _ -> Alcotest.fail "list should answer keys");
  match S.apply t (S.List "zzz") with
  | S.Keys [] -> ()
  | _ -> Alcotest.fail "no match should answer empty"

let test_delete_idempotent () =
  let t = S.create () in
  ignore (S.apply t (S.Put { key = "k"; value = "v" }));
  (match S.apply t (S.Delete "k") with
  | S.Deleted -> ()
  | _ -> Alcotest.fail "delete should ack");
  (match S.apply t (S.Delete "k") with
  | S.Deleted -> ()
  | _ -> Alcotest.fail "delete of absent key should still ack");
  check Alcotest.(option string) "gone" None (S.find t "k")

let test_copy_is_independent () =
  let t = S.create () in
  ignore (S.apply t (S.Put { key = "k"; value = "v" }));
  let c = S.copy t in
  ignore (S.apply c (S.Put { key = "k"; value = "w" }));
  check Alcotest.(option string) "original untouched" (Some "v") (S.find t "k");
  check Alcotest.(option string) "copy advanced" (Some "w") (S.find c "k")

(* ------------------------------------------------------------------ *)
(* monitor                                                             *)

let test_monitor_sees_mutations () =
  let t = S.create () in
  let seen = ref [] in
  S.set_monitor t (fun ~key ~prev ~next -> seen := (key, prev, next) :: !seen);
  ignore (S.apply t (S.Get "k"));
  ignore (S.apply t (S.Put { key = "k"; value = "a" }));
  ignore (S.apply t (S.Cas { key = "k"; expect = Some "zzz"; value = "b" }));
  ignore (S.apply t (S.Cas { key = "k"; expect = Some "a"; value = "b" }));
  ignore (S.apply t (S.List ""));
  ignore (S.apply t (S.Delete "k"));
  Alcotest.(check (list (triple string (option string) (option string))))
    "mutations only, in order, with prev/next"
    [
      ("k", None, Some "a");
      ("k", Some "a", Some "b");
      ("k", Some "b", None);
    ]
    (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* serve fault hooks                                                   *)

type rpc_log = { mutable replies : (float option * S.response) list }

let serve_once ?(faults = Sim.Fault.none) ?(seed = 42) req =
  let net = Sim.Network.create ~seed ~faults ~n:2 ~label:(fun _ -> "m") () in
  let t = S.create () in
  let log = { replies = [] } in
  S.serve t net req ~reply:(fun ?extra_delay resp ->
      log.replies <- log.replies @ [ (extra_delay, resp) ]);
  (t, log)

let test_serve_no_faults_is_one_apply () =
  let t, log = serve_once (S.Put { key = "k"; value = "v" }) in
  (match log.replies with
  | [ (None, S.Written) ] -> ()
  | _ -> Alcotest.fail "exactly one undelayed reply");
  check Alcotest.(option string) "applied" (Some "v") (S.find t "k")

let test_serve_sdrop_certain_loses_request () =
  let t, log =
    serve_once ~faults:(plan "sdrop:1") (S.Put { key = "k"; value = "v" })
  in
  check Alcotest.int "no reply" 0 (List.length log.replies);
  check Alcotest.(option string) "never applied" None (S.find t "k");
  check Alcotest.int "charged as lost request" 1 (S.stats t).S.lost_requests;
  check Alcotest.int "no put charged" 0 (S.stats t).S.puts

let test_serve_sdup_certain_duplicates_response () =
  let t, log =
    serve_once ~faults:(plan "sdup:1") (S.Put { key = "k"; value = "v" })
  in
  (match log.replies with
  | [ (None, S.Written); (None, S.Written) ] -> ()
  | _ -> Alcotest.fail "exactly two replies");
  check Alcotest.(option string) "applied once" (Some "v") (S.find t "k");
  check Alcotest.int "puts" 1 (S.stats t).S.puts;
  check Alcotest.int "dup charged" 1 (S.stats t).S.dup_responses

let test_serve_sslow_certain_delays_response () =
  let _, log =
    serve_once ~faults:(plan "sslow:1:7.5") (S.Put { key = "k"; value = "v" })
  in
  match log.replies with
  | [ (Some d, S.Written) ] -> check (Alcotest.float 0.0) "delay" 7.5 d
  | _ -> Alcotest.fail "one delayed reply"

let test_serve_sout_window_answers_unavailable () =
  let t, log =
    serve_once ~faults:(plan "sout:0,10") (S.Put { key = "k"; value = "v" })
  in
  (match log.replies with
  | [ (None, S.Unavailable) ] -> ()
  | _ -> Alcotest.fail "one Unavailable reply");
  check Alcotest.(option string) "never applied" None (S.find t "k");
  check Alcotest.int "charged" 1 (S.stats t).S.unavailable

let test_serve_drop_response_leg_applies_first () =
  (* With sdrop certain on both draws the request leg is hit first, so
     force the response-leg path by checking stats over many seeds with
     p = 0.5: both legs must be exercised. *)
  let lost_req = ref 0 and lost_resp = ref 0 and delivered = ref 0 in
  for seed = 1 to 200 do
    let t, log =
      serve_once ~seed ~faults:(plan "sdrop:0.5")
        (S.Put { key = "k"; value = "v" })
    in
    let s = S.stats t in
    lost_req := !lost_req + s.S.lost_requests;
    lost_resp := !lost_resp + s.S.lost_responses;
    delivered := !delivered + List.length log.replies;
    if s.S.lost_responses = 1 then
      check Alcotest.(option string) "applied though response lost"
        (Some "v") (S.find t "k")
  done;
  Alcotest.(check bool) "request leg exercised" true (!lost_req > 20);
  Alcotest.(check bool) "response leg exercised" true (!lost_resp > 20);
  Alcotest.(check bool) "some delivered" true (!delivered > 20)

let () =
  Alcotest.run "store"
    [
      ( "apply",
        [
          Alcotest.test_case "get/put round-trip" `Quick test_get_put_roundtrip;
          Alcotest.test_case "cas create and conflict" `Quick
            test_cas_create_and_conflict;
          Alcotest.test_case "list sorted by prefix" `Quick
            test_list_sorted_by_prefix;
          Alcotest.test_case "delete idempotent" `Quick test_delete_idempotent;
          Alcotest.test_case "copy independent" `Quick test_copy_is_independent;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "sees mutations with prev/next" `Quick
            test_monitor_sees_mutations;
        ] );
      ( "serve",
        [
          Alcotest.test_case "no faults: one apply, one reply" `Quick
            test_serve_no_faults_is_one_apply;
          Alcotest.test_case "sdrop loses request leg" `Quick
            test_serve_sdrop_certain_loses_request;
          Alcotest.test_case "sdup duplicates response" `Quick
            test_serve_sdup_certain_duplicates_response;
          Alcotest.test_case "sslow delays response" `Quick
            test_serve_sslow_certain_delays_response;
          Alcotest.test_case "sout answers Unavailable" `Quick
            test_serve_sout_window_answers_unavailable;
          Alcotest.test_case "both drop legs exercised" `Quick
            test_serve_drop_response_leg_applies_first;
        ] );
    ]
