(* Property tests for the structure-of-arrays 4-ary event heap: the model
   is a stable sort by (priority, insertion order), which is exactly the
   delivery-order contract the discrete-event engine relies on. *)

let check = Alcotest.check

module Heap = Sim.Heap

(* Reference model: stable sort on priority preserves insertion order of
   ties, like the heap's sequence numbers. *)
let model_of items =
  List.stable_sort (fun (p1, _) (p2, _) -> compare (p1 : float) p2) items

let drain h =
  let rec go acc =
    match Heap.pop h with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let prop_pop_matches_model =
  QCheck2.Test.make ~name:"destructive pops = stable sort by priority"
    ~count:300
    QCheck2.Gen.(list (pair (float_bound_inclusive 100.) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.push h ~prio:p v) items;
      drain h = model_of items)

let prop_to_sorted_list_matches_model =
  QCheck2.Test.make ~name:"to_sorted_list = model, non-destructively"
    ~count:200
    QCheck2.Gen.(list (pair (float_bound_inclusive 10.) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.push h ~prio:p v) items;
      let sorted = Heap.to_sorted_list h in
      sorted = model_of items
      && Heap.size h = List.length items
      && drain h = sorted)

let prop_equal_prio_is_fifo =
  QCheck2.Test.make ~name:"equal priorities pop in insertion order"
    ~count:100
    QCheck2.Gen.(int_range 1 300)
    (fun count ->
      let h = Heap.create () in
      for v = 1 to count do
        (* Only two distinct priorities: maximal tie pressure. *)
        Heap.push h ~prio:(float_of_int (v mod 2)) v
      done;
      let evens, odds =
        List.partition (fun (p, _) -> p = 0.) (drain h)
      in
      let values l = List.map snd l in
      values evens = List.filter (fun v -> v mod 2 = 0) (List.init count (fun i -> i + 1))
      && values odds = List.filter (fun v -> v mod 2 = 1) (List.init count (fun i -> i + 1)))

(* Interleaved pushes and pops against a running reference model. *)
let prop_interleaved_ops_match_model =
  QCheck2.Test.make ~name:"interleaved push/pop tracks the model" ~count:200
    QCheck2.Gen.(list (pair (option (float_bound_inclusive 50.)) small_int))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | Some prio ->
              Heap.push h ~prio v;
              model := !model @ [ (prio, !seq, v) ];
              incr seq;
              model :=
                List.stable_sort
                  (fun (p1, s1, _) (p2, s2, _) ->
                    if p1 <> p2 then compare (p1 : float) p2
                    else compare (s1 : int) s2)
                  !model
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> ()
              | Some (p, v), (mp, _, mv) :: rest ->
                  if p <> mp || v <> mv then ok := false;
                  model := rest
              | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      !ok && Heap.size h = List.length !model)

let prop_clear_and_regrow =
  QCheck2.Test.make ~name:"clear resets FIFO ties and capacity regrows"
    ~count:50
    QCheck2.Gen.(pair (int_range 1 100) (int_range 1 100))
    (fun (first, second) ->
      let h = Heap.create () in
      for v = 1 to first do
        Heap.push h ~prio:1.0 v
      done;
      Heap.clear h;
      (* After clear the sequence counter restarts, so a fresh all-ties
         batch must still pop FIFO. *)
      for v = 1 to second do
        Heap.push h ~prio:2.0 v
      done;
      Heap.is_empty h = false
      && List.map snd (drain h) = List.init second (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* unit tests for the new accessors *)

let test_capacity_presize () =
  let h : int Heap.t = Heap.create ~capacity:64 () in
  check Alcotest.int "pre-sized" 64 (Heap.capacity h);
  for v = 1 to 64 do
    Heap.push h ~prio:(float_of_int v) v
  done;
  check Alcotest.int "no growth at fill" 64 (Heap.capacity h);
  Heap.push h ~prio:0.5 65;
  check Alcotest.int "doubled" 128 (Heap.capacity h)

let test_capacity_growth_from_empty () =
  let h = Heap.create () in
  check Alcotest.int "empty capacity" 0 (Heap.capacity h);
  for v = 1 to 100 do
    Heap.push h ~prio:(float_of_int (100 - v)) v
  done;
  Alcotest.(check bool) "grew" true (Heap.capacity h >= 100);
  check Alcotest.int "size" 100 (Heap.size h)

let test_iter_visits_all () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~prio:(float_of_int v) v) [ 5; 3; 9; 1 ];
  let seen = ref [] in
  Heap.iter (fun p v -> seen := (p, v) :: !seen) h;
  check Alcotest.int "visited all" 4 (List.length !seen);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "saw %d" v)
        true
        (List.mem (float_of_int v, v) !seen))
    [ 5; 3; 9; 1 ]

let test_pop_top_matches_pop () =
  let h = Heap.create () in
  List.iter
    (fun (p, v) -> Heap.push h ~prio:p v)
    [ (3., "c"); (1., "a"); (2., "b") ];
  check (Alcotest.float 0.0) "top_prio" 1. (Heap.top_prio h);
  check Alcotest.string "pop_top" "a" (Heap.pop_top h);
  (match Heap.pop h with
  | Some (p, v) ->
      check (Alcotest.float 0.0) "next prio" 2. p;
      check Alcotest.string "next value" "b" v
  | None -> Alcotest.fail "expected element");
  check Alcotest.string "last" "c" (Heap.pop_top h);
  Alcotest.check_raises "top_prio empty"
    (Invalid_argument "Heap.top_prio: empty heap") (fun () ->
      ignore (Heap.top_prio h));
  Alcotest.check_raises "pop_top empty"
    (Invalid_argument "Heap.pop_top: empty heap") (fun () ->
      ignore (Heap.pop_top h))

let test_to_sorted_list_keeps_heap_intact () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~prio:(float_of_int v) v) [ 2; 1; 3 ];
  ignore (Heap.to_sorted_list h);
  check Alcotest.int "size unchanged" 3 (Heap.size h);
  check (Alcotest.float 0.0) "min unchanged" 1. (Heap.top_prio h)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "heap"
    [
      ( "model",
        [
          q prop_pop_matches_model;
          q prop_to_sorted_list_matches_model;
          q prop_equal_prio_is_fifo;
          q prop_interleaved_ops_match_model;
          q prop_clear_and_regrow;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "capacity pre-size" `Quick test_capacity_presize;
          Alcotest.test_case "capacity growth" `Quick
            test_capacity_growth_from_empty;
          Alcotest.test_case "iter" `Quick test_iter_visits_all;
          Alcotest.test_case "pop_top / top_prio" `Quick
            test_pop_top_matches_pop;
          Alcotest.test_case "to_sorted_list non-destructive" `Quick
            test_to_sorted_list_keeps_heap_intact;
        ] );
    ]
