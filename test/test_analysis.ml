(* Tests for the analysis toolkit: stats, histograms, tables and growth
   fitting. *)

let check = Alcotest.check

module S = Analysis.Stats
module H = Analysis.Histogram
module T = Analysis.Table
module G = Analysis.Growth

let test_summarize_basics () =
  let s = S.summarize [| 1; 2; 3; 4; 5 |] in
  check Alcotest.int "count" 5 s.S.count;
  check Alcotest.int "min" 1 s.S.min;
  check Alcotest.int "max" 5 s.S.max;
  check (Alcotest.float 1e-9) "mean" 3. s.S.mean;
  check (Alcotest.float 1e-9) "median" 3. s.S.median;
  check Alcotest.int "total" 15 s.S.total;
  check (Alcotest.float 1e-9) "stddev" (sqrt 2.) s.S.stddev

let test_summarize_singleton () =
  let s = S.summarize [| 7 |] in
  check (Alcotest.float 1e-9) "median" 7. s.S.median;
  check (Alcotest.float 1e-9) "p99" 7. s.S.p99;
  check (Alcotest.float 1e-9) "stddev" 0. s.S.stddev

let test_summarize_empty_rejected () =
  match S.summarize [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_percentile_interpolation () =
  let samples = [| 0; 10 |] in
  check (Alcotest.float 1e-9) "p50 interpolates" 5. (S.percentile samples 50.);
  check (Alcotest.float 1e-9) "p0" 0. (S.percentile samples 0.);
  check (Alcotest.float 1e-9) "p100" 10. (S.percentile samples 100.)

let test_gini_extremes () =
  check (Alcotest.float 1e-9) "uniform = 0" 0. (S.gini [| 5; 5; 5; 5 |]);
  let concentrated = S.gini [| 0; 0; 0; 100 |] in
  Alcotest.(check bool) "concentrated ~ 0.75" true
    (abs_float (concentrated -. 0.75) < 1e-9);
  check (Alcotest.float 1e-9) "all zero" 0. (S.gini [| 0; 0 |])

let test_gini_orders_distributions () =
  (* The central counter's load profile is maximally unequal; the paper's
     counter is near-uniform. Gini must order them. *)
  let central = Counter.Driver.load_profile Baselines.Registry.central ~n:27
      ~schedule:Counter.Schedule.Each_once
  and retire = Counter.Driver.load_profile Baselines.Registry.retire_tree
      ~n:27 ~schedule:Counter.Schedule.Each_once
  in
  let drop_zeroth a = Array.sub a 1 (Array.length a - 1) in
  Alcotest.(check bool) "central more unequal" true
    (S.gini (drop_zeroth central) > S.gini (drop_zeroth retire))

let prop_gini_in_range =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"gini in [0, 1)" ~count:300
       QCheck2.Gen.(array_size (int_range 1 50) (int_range 0 100))
       (fun samples ->
         let g = S.gini samples in
         g >= -1e-9 && g < 1.))

let prop_percentiles_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"p50 <= p90 <= p99 <= max" ~count:300
       QCheck2.Gen.(array_size (int_range 1 60) (int_range 0 1000))
       (fun samples ->
         let s = S.summarize samples in
         s.S.median <= s.S.p90 +. 1e-9
         && s.S.p90 <= s.S.p99 +. 1e-9
         && s.S.p99 <= float_of_int s.S.max +. 1e-9))

let test_histogram_buckets () =
  let h = H.of_samples ~buckets:2 [| 0; 1; 2; 3 |] in
  Alcotest.(check (list (triple Alcotest.int Alcotest.int Alcotest.int)))
    "buckets" [ (0, 1, 2); (2, 3, 2) ] (H.bucket_counts h)

let test_histogram_single_value () =
  let h = H.of_samples ~buckets:3 [| 5; 5; 5 |] in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (H.bucket_counts h) in
  check Alcotest.int "all counted" 3 total

let prop_histogram_conserves_mass =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"histogram counts sum to sample size" ~count:200
       QCheck2.Gen.(array_size (int_range 1 100) (int_range (-50) 50))
       (fun samples ->
         let h = H.of_samples samples in
         List.fold_left (fun acc (_, _, c) -> acc + c) 0 (H.bucket_counts h)
         = Array.length samples))

let test_table_render () =
  let t = T.create ~columns:[ "name"; "value" ] in
  T.add_row t [ "alpha"; "1" ];
  T.add_row t [ "b"; "22" ];
  let s = Format.asprintf "%a" T.pp t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0
    &&
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i <> ""
    | None -> false);
  let contains_substring haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "contains alpha" true (contains_substring s "alpha")

let test_table_arity_checked () =
  let t = T.create ~columns:[ "a"; "b" ] in
  match T.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity check"

let test_table_csv () =
  let t = T.create ~columns:[ "a"; "b" ] in
  T.add_row t [ "x,y"; "2" ];
  check Alcotest.string "csv escaping" "a,b\n\"x,y\",2\n" (T.to_csv t)

let test_growth_eval () =
  check (Alcotest.float 1e-9) "log 8" 3. (G.eval G.Log 8.);
  check (Alcotest.float 1e-9) "sqrt 16" 4. (G.eval G.Sqrt 16.);
  check (Alcotest.float 1e-6) "k(81)" 3. (G.eval G.K_of_n 81.)

let test_growth_recovers_shapes () =
  (* Generate clean series from each shape and confirm best_fit recovers
     it. *)
  let ns = [ 64.; 256.; 1024.; 4096.; 16384. ] in
  List.iter
    (fun shape ->
      let points = List.map (fun n -> (n, 3.5 *. G.eval shape n)) ns in
      let best, _ = G.best_fit points in
      check Alcotest.string
        (Printf.sprintf "recovers %s" (G.shape_name shape))
        (G.shape_name shape)
        (G.shape_name best.G.shape);
      Alcotest.(check bool) "scale ~ 3.5" true
        (abs_float (best.G.scale -. 3.5) < 1e-6))
    [ G.Log; G.Sqrt; G.Linear; G.Log_squared ]

let test_growth_distinguishes_k_from_linear () =
  let ns = [ 8.; 81.; 1024.; 15625. ] in
  let points = List.map (fun n -> (n, 14. *. G.eval G.K_of_n n)) ns in
  let best, _ = G.best_fit points in
  check Alcotest.string "k(n) wins" "k(n)" (G.shape_name best.G.shape)

let test_growth_requires_points () =
  match G.best_fit [ (1., 1.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity check"

let prop_fit_perfect_series_zero_residual =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"perfect series has ~0 residual" ~count:100
       QCheck2.Gen.(pair (int_range 0 5) (float_range 0.5 20.))
       (fun (si, scale) ->
         let shape = List.nth G.all_shapes si in
         let points =
           List.map (fun n -> (n, scale *. G.eval shape n)) [ 10.; 100.; 1000. ]
         in
         let f = G.fit_shape shape points in
         f.G.residual < 1e-9))

(* ------------------------------------------------------------------ *)
(* Replicate *)

module Rep = Analysis.Replicate

let test_replicate_summary () =
  let s = Rep.across_seeds ~seeds:[ 1; 2; 3 ] float_of_int in
  check Alcotest.int "runs" 3 s.Rep.runs;
  check (Alcotest.float 1e-9) "mean" 2. s.Rep.mean;
  check (Alcotest.float 1e-9) "sd (sample)" 1. s.Rep.stddev;
  check (Alcotest.float 1e-9) "min" 1. s.Rep.min;
  check (Alcotest.float 1e-9) "max" 3. s.Rep.max;
  Alcotest.(check bool) "ci95 positive" true (s.Rep.ci95 > 0.)

let test_replicate_single_run () =
  let s = Rep.across_seeds ~seeds:[ 7 ] float_of_int in
  check (Alcotest.float 1e-9) "mean" 7. s.Rep.mean;
  check (Alcotest.float 1e-9) "sd" 0. s.Rep.stddev

let test_replicate_empty_rejected () =
  match Rep.across_seeds ~seeds:[] float_of_int with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_parallel_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "same results" (List.map f xs)
    (Rep.parallel_map f xs);
  Alcotest.(check (list int)) "one domain" (List.map f xs)
    (Rep.parallel_map ~domains:1 f xs);
  Alcotest.(check (list int)) "many domains" (List.map f xs)
    (Rep.parallel_map ~domains:8 f xs)

let test_parallel_map_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Rep.parallel_map succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Rep.parallel_map succ [ 1 ])

let test_parallel_map_runs_simulations () =
  (* Independent counters in separate domains must produce the same
     results as a sequential sweep — the simulator has no global mutable
     state. *)
  let run seed =
    let r =
      Counter.Driver.run ~seed Baselines.Registry.retire_tree ~n:27
        ~schedule:Counter.Schedule.Each_once
    in
    ( r.Counter.Driver.values_exact && r.Counter.Driver.sequentially_ordered,
      r.Counter.Driver.total_messages )
  in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check (list (pair bool int)))
    "parallel = sequential" (List.map run seeds)
    (Rep.parallel_map ~domains:3 run seeds)

let () =
  Alcotest.run "analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize_basics;
          Alcotest.test_case "singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "empty rejected" `Quick test_summarize_empty_rejected;
          Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
          Alcotest.test_case "gini extremes" `Quick test_gini_extremes;
          Alcotest.test_case "gini orders load profiles" `Quick test_gini_orders_distributions;
          prop_gini_in_range;
          prop_percentiles_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "single value" `Quick test_histogram_single_value;
          prop_histogram_conserves_mass;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity checked" `Quick test_table_arity_checked;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "growth",
        [
          Alcotest.test_case "eval" `Quick test_growth_eval;
          Alcotest.test_case "recovers shapes" `Quick test_growth_recovers_shapes;
          Alcotest.test_case "k vs linear" `Quick test_growth_distinguishes_k_from_linear;
          Alcotest.test_case "needs points" `Quick test_growth_requires_points;
          prop_fit_perfect_series_zero_residual;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "summary" `Quick test_replicate_summary;
          Alcotest.test_case "single run" `Quick test_replicate_single_run;
          Alcotest.test_case "empty rejected" `Quick test_replicate_empty_rejected;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_map_matches_sequential;
          Alcotest.test_case "edge cases" `Quick test_parallel_map_edge_cases;
          Alcotest.test_case "parallel simulations" `Quick test_parallel_map_runs_simulations;
        ] );
    ]
