(* Golden determinism regression for the event-engine rewrite.

   The golden values below were produced by the ORIGINAL boxed binary-heap
   engine (the pre-rewrite seed of this repository) running the paper's
   retirement counter at n = 81 with a seed-shuffled each-once order. The
   structure-of-arrays 4-ary heap must deliver events in exactly the same
   order — the (prio, seq) contract is a total order, so any conforming
   implementation reproduces these runs bit-identically. If one of these
   checks ever fails, an engine change silently altered delivery order and
   every seeded experiment in EXPERIMENTS.md is invalidated.

   The checksum is Sim.Metrics.checksum: an FNV-1a fingerprint of the full
   per-processor (sent, received) load vector including overflow hires. *)

let check = Alcotest.check

type golden = {
  name : string;
  seed : int;
  delay : Sim.Delay.t;
  total_messages : int;
  total_load : int;
  bottleneck : int * int;
  overflow : int;
  checksum : int;
}

let goldens =
  [
    {
      name = "constant delay";
      seed = 42;
      delay = Sim.Delay.Constant 1.0;
      total_messages = 1627;
      total_load = 3254;
      bottleneck = (7, 44);
      overflow = 76;
      checksum = 1117116884259558886;
    };
    {
      name = "exponential delay";
      seed = 7;
      delay = Sim.Delay.Exponential 1.0;
      total_messages = 1636;
      total_load = 3272;
      bottleneck = (20, 44);
      overflow = 79;
      checksum = 2181917791483362687;
    };
    {
      name = "adversarial jitter";
      seed = 1;
      delay = Sim.Delay.Adversarial_jitter 0.5;
      total_messages = 1777;
      total_load = 3554;
      bottleneck = (25, 43);
      overflow = 97;
      checksum = 3112887691210187096;
    };
  ]

let run_metrics ?faults g =
  let module R = Core.Retire_counter in
  let n = 81 in
  let c = R.create ?faults ~n ~seed:g.seed ~delay:g.delay () in
  let order = Sim.Rng.permutation (Sim.Rng.create ~seed:g.seed) n in
  Array.iteri
    (fun i p ->
      let v = R.inc c ~origin:(p + 1) in
      check Alcotest.int (Printf.sprintf "%s: value %d" g.name i) i v)
    order;
  R.metrics c

let test_golden g () =
  let m = run_metrics g in
  check Alcotest.int "total messages" g.total_messages
    (Sim.Metrics.total_messages m);
  check Alcotest.int "total load" g.total_load (Sim.Metrics.total_load m);
  check
    Alcotest.(pair int int)
    "bottleneck" g.bottleneck (Sim.Metrics.bottleneck m);
  check Alcotest.int "overflow hires" g.overflow
    (Sim.Metrics.overflow_processors m);
  check Alcotest.int "load-vector checksum" g.checksum (Sim.Metrics.checksum m)

(* Same-process reproducibility: two identical runs must agree exactly —
   catches hidden global state (hash seeds, shared RNGs) leaking into the
   engine. *)
let test_repeat_runs_identical () =
  let g = List.hd goldens in
  let a = run_metrics g and b = run_metrics g in
  check Alcotest.int "checksums agree" (Sim.Metrics.checksum a)
    (Sim.Metrics.checksum b);
  Alcotest.(check (array int))
    "load vectors agree" (Sim.Metrics.load_array a)
    (Sim.Metrics.load_array b)

(* The fault layer's zero-overhead contract: an explicit empty plan makes
   no Rng draw and mixes nothing into the checksum, so every golden must
   reproduce bit-identically with [~faults:Sim.Fault.none]. *)
let test_fault_none_bit_identical () =
  List.iter
    (fun g ->
      let m = run_metrics ~faults:Sim.Fault.none g in
      check Alcotest.int
        (Printf.sprintf "%s: checksum under Fault.none" g.name)
        g.checksum (Sim.Metrics.checksum m))
    goldens

(* Fault runs are seeded like everything else: the same plan twice must
   reproduce the same load vector exactly. *)
let test_fault_plan_reproducible () =
  let faults =
    match Sim.Fault.of_string "drop:0.02/dup:0.01/part:1-9@3,20" with
    | Ok f -> f
    | Error e -> Alcotest.failf "bad plan: %s" e
  in
  let run () =
    let module R = Core.Retire_counter in
    let c = R.create ~faults ~n:81 ~seed:42 () in
    let order = Sim.Rng.permutation (Sim.Rng.create ~seed:42) 81 in
    Array.iter
      (fun p -> ignore (R.inc_result c ~origin:(p + 1)))
      order;
    R.metrics c
  in
  let a = run () and b = run () in
  check Alcotest.int "fault-run checksums agree" (Sim.Metrics.checksum a)
    (Sim.Metrics.checksum b);
  check Alcotest.int "fault counters agree" (Sim.Metrics.dropped a)
    (Sim.Metrics.dropped b);
  (* The plan above genuinely injects faults under this seed — otherwise
     this test would silently degenerate into the Fault.none case. *)
  check Alcotest.bool "plan actually fired" true (Sim.Metrics.dropped a > 0)

(* Sharding the event queue must not move a single event: for every shard
   count the canonical (arrival, gseq) merge across the per-shard heaps
   reproduces the sequential goldens bit-for-bit. This is the counter-side
   determinism matrix for the sharded engine (Sim.Par has its own in
   test_par.ml). *)
let shard_counts = [ 1; 2; 4; 8 ]

let test_shard_matrix_goldens () =
  List.iter
    (fun g ->
      List.iter
        (fun s ->
          let m = Sim.Network.with_shards s (fun () -> run_metrics g) in
          check Alcotest.int
            (Printf.sprintf "%s: golden checksum under %d shards" g.name s)
            g.checksum (Sim.Metrics.checksum m))
        shard_counts)
    goldens

(* Same matrix under fault plans — a deterministic crash/recover plan and
   a probabilistic drop/dup/partition plan. Faults touch the Rng draw
   order (at send time) and the crash trigger order (at pop time); both
   are layout-independent, so every shard count must agree with the
   unsharded run, fault counters included. *)
let test_shard_matrix_fault_plans () =
  let plan s =
    match Sim.Fault.of_string s with
    | Ok f -> f
    | Error e -> Alcotest.failf "bad plan: %s" e
  in
  (* Stalls are expected under a fault plan, so this runner goes through
     inc_result instead of run_metrics's raising inc. *)
  let run_faulted faults =
    let module R = Core.Retire_counter in
    let c = R.create ~faults ~n:81 ~seed:42 () in
    let order = Sim.Rng.permutation (Sim.Rng.create ~seed:42) 81 in
    Array.iter (fun p -> ignore (R.inc_result c ~origin:(p + 1))) order;
    R.metrics c
  in
  List.iter
    (fun spec ->
      let faults = plan spec in
      let base = run_faulted faults in
      List.iter
        (fun s ->
          let m = Sim.Network.with_shards s (fun () -> run_faulted faults) in
          check Alcotest.int
            (Printf.sprintf "%s: checksum under %d shards" spec s)
            (Sim.Metrics.checksum base) (Sim.Metrics.checksum m);
          check Alcotest.int
            (Printf.sprintf "%s: drops under %d shards" spec s)
            (Sim.Metrics.dropped base) (Sim.Metrics.dropped m);
          check Alcotest.int
            (Printf.sprintf "%s: recoveries under %d shards" spec s)
            (Sim.Metrics.recoveries base)
            (Sim.Metrics.recoveries m))
        shard_counts;
      (* the plan must actually fire, or the matrix degenerates *)
      check Alcotest.bool
        (Printf.sprintf "%s: plan bites" spec)
        true
        (Sim.Metrics.dropped base > 0 || Sim.Metrics.crashes base > 0))
    [ "crash:3@4/recover:3@40"; "drop:0.02/dup:0.01/part:1-9@3,20" ]

(* The durable WAL-backed counter under Fault.none is disarmed: no retry
   timers, no Rng draws, a sequential store pipeline — so its runs must
   be bit-identical across every shard count, store traffic included
   (the store is processor n+1 in the counter's own network, so its RPCs
   flow through the same sharded heaps). The golden pins the full load
   vector; a change to the WAL record flow (extra retry, reordered
   snapshot, different chunk cadence) moves it. *)
let durable_golden =
  (* n = 16, seed 42, seed-shuffled each-once order. *)
  (72, 144, (1, 72), 1938892630621606450)

let run_durable_metrics () =
  let module D = Core.Durable_counter in
  let n = 16 in
  let c = D.create ~faults:Sim.Fault.none ~n ~seed:42 () in
  let order = Sim.Rng.permutation (Sim.Rng.create ~seed:42) n in
  Array.iteri
    (fun i p ->
      let v = D.inc c ~origin:(p + 1) in
      check Alcotest.int (Printf.sprintf "durable: value %d" i) i v)
    order;
  (* [value] audits the store offline: the durable truth must match the
     count of completed operations exactly. *)
  check Alcotest.int "durable: audited count" n (D.value c);
  D.metrics c

let test_durable_golden () =
  let msgs, load, bottleneck, checksum = durable_golden in
  let m = run_durable_metrics () in
  check Alcotest.int "total messages" msgs (Sim.Metrics.total_messages m);
  check Alcotest.int "total load" load (Sim.Metrics.total_load m);
  check
    Alcotest.(pair int int)
    "bottleneck" bottleneck (Sim.Metrics.bottleneck m);
  check Alcotest.int "load-vector checksum" checksum (Sim.Metrics.checksum m)

let test_durable_shard_matrix () =
  let _, _, _, checksum = durable_golden in
  List.iter
    (fun s ->
      let m = Sim.Network.with_shards s run_durable_metrics in
      check Alcotest.int
        (Printf.sprintf "durable: golden checksum under %d shards" s)
        checksum (Sim.Metrics.checksum m))
    shard_counts

(* The phase-king Byzantine counter under Fault.none must be as
   deterministic as everything else: the corruption path is never
   consulted (zero Rng draws, nothing mixed into the checksum), so the
   pinned golden must reproduce with and without the empty plan and
   across every shard count. The golden pins the full load vector of an
   all-to-all protocol — any change to the three-round phase cadence
   (an extra vote, a reordered king broadcast) moves it. *)
let sync_golden =
  (* n = 7, seed 42, seed-shuffled each-once order. *)
  (1974, 3948, (1, 584), 1735325893595757405)

let run_sync_metrics ?faults () =
  let module S = Core.Sync_counter in
  let n = 7 in
  let c = S.create ?faults ~n ~seed:42 () in
  let order = Sim.Rng.permutation (Sim.Rng.create ~seed:42) n in
  Array.iteri
    (fun i p ->
      let v = S.inc c ~origin:(p + 1) in
      check Alcotest.int (Printf.sprintf "sync: value %d" i) i v)
    order;
  S.metrics c

let test_sync_golden () =
  let msgs, load, bottleneck, checksum = sync_golden in
  let m = run_sync_metrics () in
  check Alcotest.int "total messages" msgs (Sim.Metrics.total_messages m);
  check Alcotest.int "total load" load (Sim.Metrics.total_load m);
  check
    Alcotest.(pair int int)
    "bottleneck" bottleneck (Sim.Metrics.bottleneck m);
  check Alcotest.int "load-vector checksum" checksum (Sim.Metrics.checksum m);
  let m' = run_sync_metrics ~faults:Sim.Fault.none () in
  check Alcotest.int "checksum under Fault.none" checksum
    (Sim.Metrics.checksum m')

let test_sync_shard_matrix () =
  let _, _, _, checksum = sync_golden in
  List.iter
    (fun s ->
      let m = Sim.Network.with_shards s (fun () -> run_sync_metrics ()) in
      check Alcotest.int
        (Printf.sprintf "sync: golden checksum under %d shards" s)
        checksum (Sim.Metrics.checksum m))
    shard_counts

(* The driver-level wiring of the same knob: --sim-domains reports are
   byte-identical for every value. *)
let test_driver_sim_domains_identical () =
  let run d =
    Counter.Driver.run ~seed:1234 ~sim_domains:d
      Baselines.Registry.retire_tree ~n:81
      ~schedule:Counter.Schedule.Each_once_shuffled
  in
  let base = run 1 in
  List.iter
    (fun d ->
      let r = run d in
      Alcotest.(check (array int))
        (Printf.sprintf "values identical, sim_domains=%d" d)
        base.Counter.Driver.values r.Counter.Driver.values;
      check Alcotest.int
        (Printf.sprintf "messages identical, sim_domains=%d" d)
        base.Counter.Driver.total_messages r.Counter.Driver.total_messages;
      check Alcotest.int
        (Printf.sprintf "bottleneck identical, sim_domains=%d" d)
        base.Counter.Driver.bottleneck_load r.Counter.Driver.bottleneck_load)
    [ 2; 4; 8 ]

(* The driver's shuffled schedule must also be reproducible end-to-end. *)
let test_driver_reports_reproducible () =
  let run () =
    Counter.Driver.run ~seed:1234 Baselines.Registry.retire_tree ~n:81
      ~schedule:Counter.Schedule.Each_once_shuffled
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "correct" true
    (a.Counter.Driver.values_exact && a.Counter.Driver.sequentially_ordered);
  check Alcotest.int "bottleneck load" a.Counter.Driver.bottleneck_load
    b.Counter.Driver.bottleneck_load;
  check Alcotest.int "bottleneck proc" a.Counter.Driver.bottleneck_proc
    b.Counter.Driver.bottleneck_proc;
  check Alcotest.int "messages" a.Counter.Driver.total_messages
    b.Counter.Driver.total_messages

let () =
  Alcotest.run "determinism"
    [
      ( "golden",
        List.map
          (fun g -> Alcotest.test_case g.name `Quick (test_golden g))
          goldens );
      ( "reproducibility",
        [
          Alcotest.test_case "repeat runs identical" `Quick
            test_repeat_runs_identical;
          Alcotest.test_case "Fault.none bit-identical to goldens" `Quick
            test_fault_none_bit_identical;
          Alcotest.test_case "fault plan reproducible" `Quick
            test_fault_plan_reproducible;
          Alcotest.test_case "driver reports reproducible" `Quick
            test_driver_reports_reproducible;
        ] );
      ( "shard matrix",
        [
          Alcotest.test_case "goldens bit-identical under 1/2/4/8 shards"
            `Quick test_shard_matrix_goldens;
          Alcotest.test_case "fault plans bit-identical under 1/2/4/8 shards"
            `Quick test_shard_matrix_fault_plans;
          Alcotest.test_case "durable golden" `Quick test_durable_golden;
          Alcotest.test_case "durable bit-identical under 1/2/4/8 shards"
            `Quick test_durable_shard_matrix;
          Alcotest.test_case "sync-count golden" `Quick test_sync_golden;
          Alcotest.test_case "sync-count bit-identical under 1/2/4/8 shards"
            `Quick test_sync_shard_matrix;
          Alcotest.test_case "driver --sim-domains reports identical" `Quick
            test_driver_sim_domains_identical;
        ] );
    ]
