(* Tests for the deterministic fault-injection layer (Sim.Fault) and the
   failure-aware counter behaviour built on it.

   Structure:
   - plan grammar: of_string / to_string round-trips, validation errors;
   - qcheck: string-level round-trip fixpoints for Delay and Fault — for
     any plan [t], [to_string (of_string (to_string t)) = to_string t];
   - network semantics: crash triggers (At / After), global and per-link
     drops, duplication, healing partitions, suppressed sends from
     crashed processors, trace annotations;
   - counters: quorum-majority completes every live-origin operation
     under f < ceil(n/2) pre-crashes; the retirement counter stalls with
     a typed outcome (never hangs) when its path is dead; fault runs are
     reproducible checksum-for-checksum. *)

let check = Alcotest.check

let plan s =
  match Sim.Fault.of_string s with
  | Ok f -> f
  | Error e -> Alcotest.failf "plan %S rejected: %s" s e

(* ------------------------------------------------------------------ *)
(* Grammar *)

let test_parse_round_trips () =
  List.iter
    (fun s ->
      check Alcotest.string
        (Printf.sprintf "canonical %S" s)
        s
        (Sim.Fault.to_string (plan s)))
    [
      "none";
      "crash:3@1.5";
      "crash:2@#10";
      "crash:3@1.5/recover:3@9";
      "crash:2@#10/recover:2@12.5/recover:2@40";
      "drop:0.25";
      "drop:1,2:0.5";
      "dup:0.1";
      "part:1-4@2,10";
      "crash:3@1.5/crash:7@#40/drop:0.01/drop:2,5:1/dup:0.05/part:1-4@2,10";
      "crash:3@1.5/crash:7@#40/recover:7@50/drop:0.01/dup:0.05/part:1-4@2,10";
      "sdrop:0.25";
      "sdup:0.1";
      "sslow:0.5:8";
      "sout:2,10";
      "crash:3@1.5/recover:3@9/sdrop:0.1/sdup:0.05/sslow:0.25:4/sout:0,6/sout:20,30";
    ]

let test_parse_structure () =
  let f = plan "crash:3@1.5/crash:2@#10/drop:0.25/dup:0.1/part:1-4@2,10" in
  check Alcotest.int "crash count" 2 (Sim.Fault.crash_count f);
  (match f.Sim.Fault.crashes with
  | [ c1; c2 ] ->
      check Alcotest.int "first crash proc" 3 c1.Sim.Fault.processor;
      check Alcotest.bool "first crash at time" true
        (c1.Sim.Fault.trigger = Sim.Fault.At 1.5);
      check Alcotest.bool "second crash after count" true
        (c2.Sim.Fault.trigger = Sim.Fault.After 10)
  | _ -> Alcotest.fail "expected two crash clauses");
  check (Alcotest.float 0.) "drop" 0.25 f.Sim.Fault.drop;
  check (Alcotest.float 0.) "dup" 0.1 f.Sim.Fault.duplicate;
  match f.Sim.Fault.partitions with
  | [ p ] ->
      check Alcotest.(pair int int) "range" (1, 4) (p.Sim.Fault.lo, p.Sim.Fault.hi)
  | _ -> Alcotest.fail "expected one partition"

let test_parse_rejects () =
  List.iter
    (fun s ->
      match Sim.Fault.of_string s with
      | Ok _ -> Alcotest.failf "plan %S should have been rejected" s
      | Error _ -> ())
    [
      "";
      "bogus";
      "crash:3";
      "crash:0@1";
      "crash:3@-2";
      "drop:1.5";
      "drop:-0.1";
      "drop:0,2:0.5";
      "dup:2";
      "part:4-1@2,10";
      "part:1-4@10,2";
      "nonsense:1";
      "recover:3";
      "recover:0@1";
      "crash:3@1/recover:3@-2";
      "crash:3@1/recover:3@#5";
      "sdrop:1.5";
      "sdrop:-0.1";
      "sdup:2";
      "sslow:0.5";
      "sslow:2:4";
      "sslow:0.5:-1";
      "sout:10";
      "sout:10,2";
      "sout:-1,5";
    ]

let test_recover_requires_crash () =
  (* Reviving a processor the plan never kills is a typed error, not a
     silent no-op clause. *)
  match Sim.Fault.of_string "crash:2@1/recover:5@3" with
  | Ok _ -> Alcotest.fail "recover for a never-crashed processor accepted"
  | Error e ->
      check Alcotest.bool
        (Printf.sprintf "error names the victim: %s" e)
        true
        (String.length e > 0
        &&
        let needle = "never crashes" in
        let nl = String.length needle and el = String.length e in
        let rec go i = i + nl <= el && (String.sub e i nl = needle || go (i + 1)) in
        go 0)

let test_is_none () =
  check Alcotest.bool "none is none" true (Sim.Fault.is_none Sim.Fault.none);
  check Alcotest.bool "parsed none" true (Sim.Fault.is_none (plan "none"));
  check Alcotest.bool "drop active" false (Sim.Fault.is_none (plan "drop:0.5"));
  (* A zero-probability drop parses back to the structural [none]. *)
  check Alcotest.bool "drop:0 collapses" true (Sim.Fault.is_none (plan "drop:0"))

let test_drop_on () =
  let f = plan "drop:0.1/drop:1,2:0.9/drop:2,1:0" in
  check (Alcotest.float 0.) "override" 0.9 (Sim.Fault.drop_on f ~src:1 ~dst:2);
  check (Alcotest.float 0.) "zero override" 0.
    (Sim.Fault.drop_on f ~src:2 ~dst:1);
  check (Alcotest.float 0.) "global default" 0.1
    (Sim.Fault.drop_on f ~src:3 ~dst:4)

let test_partitioned () =
  let f = plan "part:1-2@5,10" in
  let cut ~src ~dst ~at = Sim.Fault.partitioned f ~src ~dst ~at in
  check Alcotest.bool "before window" false (cut ~src:1 ~dst:3 ~at:4.9);
  check Alcotest.bool "cut at open" true (cut ~src:1 ~dst:3 ~at:5.);
  check Alcotest.bool "cut both directions" true (cut ~src:3 ~dst:2 ~at:7.);
  check Alcotest.bool "same side inside" false (cut ~src:1 ~dst:2 ~at:7.);
  check Alcotest.bool "same side outside" false (cut ~src:3 ~dst:4 ~at:7.);
  check Alcotest.bool "healed (half-open)" false (cut ~src:1 ~dst:3 ~at:10.)

let test_store_plan_statics () =
  let f = plan "sout:2,10/sout:20,30" in
  check Alcotest.bool "store_active" true (Sim.Fault.store_active f);
  check Alcotest.bool "before window" false (Sim.Fault.store_down f ~at:1.9);
  check Alcotest.bool "at open" true (Sim.Fault.store_down f ~at:2.);
  check Alcotest.bool "healed (half-open)" false (Sim.Fault.store_down f ~at:10.);
  check Alcotest.bool "second window" true (Sim.Fault.store_down f ~at:25.);
  check Alcotest.bool "none inactive" false
    (Sim.Fault.store_active Sim.Fault.none);
  (* Zero-probability store clauses parse back to the structural none,
     like drop:0 — plans without effective store faults stay draw-free. *)
  check Alcotest.bool "sdrop:0 collapses" true (Sim.Fault.is_none (plan "sdrop:0"));
  check Alcotest.bool "sslow:0:9 collapses" true
    (Sim.Fault.is_none (plan "sslow:0:9"));
  check Alcotest.bool "sdup active" false (Sim.Fault.is_none (plan "sdup:0.5"))

(* ------------------------------------------------------------------ *)
(* QCheck round-trips: string-level fixpoints. Printing uses %g, so
   parse-then-print of any printed form must reproduce it exactly. *)

let gen_prob = QCheck.Gen.map (fun i -> float_of_int i /. 64.) (QCheck.Gen.int_bound 64)

let gen_pos_float =
  QCheck.Gen.map (fun i -> float_of_int (i + 1) /. 8.) (QCheck.Gen.int_bound 800)

let gen_delay =
  let open QCheck.Gen in
  oneof
    [
      map (fun d -> Sim.Delay.Constant d) gen_pos_float;
      map2
        (fun a b ->
          let lo = Float.min a b and hi = Float.max a b in
          Sim.Delay.Uniform (lo, hi +. 0.5))
        gen_pos_float gen_pos_float;
      map (fun m -> Sim.Delay.Exponential m) gen_pos_float;
      map (fun b -> Sim.Delay.Adversarial_jitter b) gen_pos_float;
    ]

let gen_trigger =
  let open QCheck.Gen in
  oneof
    [
      map (fun t -> Sim.Fault.At (float_of_int t /. 4.)) (int_bound 400);
      map (fun d -> Sim.Fault.After d) (int_bound 10_000);
    ]

let gen_fault =
  let open QCheck.Gen in
  let crash =
    map2
      (fun p trigger -> { Sim.Fault.processor = p + 1; trigger })
      (int_bound 30) gen_trigger
  in
  let link =
    map3 (fun s d p -> ((s + 1, d + 1), p)) (int_bound 15) (int_bound 15) gen_prob
  in
  let part =
    map3
      (fun lo len t0 ->
        {
          Sim.Fault.lo = lo + 1;
          hi = lo + 1 + len;
          from_time = float_of_int t0 /. 2.;
          heal_time = (float_of_int t0 /. 2.) +. 3.5;
        })
      (int_bound 10) (int_bound 5) (int_bound 100)
  in
  list_size (int_bound 3) crash >>= fun crashes ->
  (* Recoveries may only name processors the plan crashes (validate
     enforces it), so draw them from the crash clauses just generated. *)
  (match crashes with
  | [] -> return []
  | _ :: _ ->
      let pick =
        oneofl (List.map (fun (c : Sim.Fault.crash) -> c.processor) crashes)
      in
      let recover =
        map2
          (fun processor t ->
            ({ processor; time = float_of_int t /. 4. } : Sim.Fault.recover))
          pick (int_bound 400)
      in
      list_size (int_bound 2) recover)
  >>= fun recovers ->
  gen_prob >>= fun drop ->
  list_size (int_bound 2) link >>= fun drop_links ->
  gen_prob >>= fun duplicate ->
  list_size (int_bound 2) part >>= fun partitions ->
  gen_prob >>= fun store_drop ->
  gen_prob >>= fun store_dup ->
  gen_prob >>= fun slow_p ->
  gen_pos_float >>= fun slow_d ->
  let store_slow = if Float.equal slow_p 0. then (0., 0.) else (slow_p, slow_d) in
  let outage =
    map
      (fun t0 -> (float_of_int t0 /. 2., (float_of_int t0 /. 2.) +. 4.5))
      (int_bound 100)
  in
  list_size (int_bound 2) outage >>= fun store_outages ->
  return
    {
      Sim.Fault.crashes;
      recovers;
      drop;
      drop_links;
      duplicate;
      partitions;
      store_drop;
      store_dup;
      store_slow;
      store_outages;
      byz = [];
      byz_rules = [];
      byz_equiv = [];
    }

let qcheck_delay_round_trip =
  QCheck.Test.make ~name:"Delay.of_string round-trips to_string" ~count:500
    (QCheck.make ~print:Sim.Delay.to_string gen_delay)
    (fun d ->
      let s = Sim.Delay.to_string d in
      match Sim.Delay.of_string s with
      | Error e -> QCheck.Test.fail_reportf "of_string %S failed: %s" s e
      | Ok d' -> String.equal s (Sim.Delay.to_string d'))

let qcheck_fault_round_trip =
  QCheck.Test.make ~name:"Fault.of_string round-trips to_string" ~count:500
    (QCheck.make ~print:Sim.Fault.to_string gen_fault)
    (fun f ->
      let s = Sim.Fault.to_string f in
      match Sim.Fault.of_string s with
      | Error e -> QCheck.Test.fail_reportf "of_string %S failed: %s" s e
      | Ok f' -> String.equal s (Sim.Fault.to_string f'))

(* ------------------------------------------------------------------ *)
(* Network-level injection semantics. All nets use the default
   Constant 1.0 delay, so virtual time equals hop count. *)

let echo_net ?faults n =
  let net = Sim.Network.create ?faults ~n () in
  Sim.Network.set_handler net (fun ~self ~src (_ : int) ->
      Sim.Network.send net ~src:self ~dst:src 0);
  net

let m net = Sim.Network.metrics net

let test_crash_at_time () =
  (* 1 and 2 exchange one round trip; 2 crashes at t = 1.5, i.e. after
     receiving the first ping (t = 1) but before the probe sent at t = 2
     arrives (t = 3). *)
  let net = Sim.Network.create ~faults:(plan "crash:2@1.5") ~n:2 () in
  let replies = ref 0 in
  Sim.Network.set_handler net (fun ~self ~src (_ : int) ->
      if self = 2 then Sim.Network.send net ~src:2 ~dst:1 0
      else begin
        incr replies;
        if !replies = 1 then Sim.Network.send net ~src:1 ~dst:2 0
      end;
      ignore src);
  Sim.Network.send net ~src:1 ~dst:2 0;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.bool "2 crashed" true (Sim.Network.crashed net 2);
  check Alcotest.bool "1 alive" false (Sim.Network.crashed net 1);
  check Alcotest.int "one reply got through" 1 !replies;
  check Alcotest.int "deliveries" 2 (Sim.Network.deliveries net);
  check Alcotest.int "probe dropped" 1 (Sim.Metrics.dropped (m net));
  check Alcotest.int "one crash recorded" 1 (Sim.Metrics.crashes (m net))

let test_crash_after_deliveries () =
  (* Endless echo between 1 and 2, cut short when 1 crash-stops once the
     delivery total reaches 2. Delivery 3 still reaches 2 (the trigger
     names processor 1), whose echo then dies on 1's corpse. *)
  let net = echo_net ~faults:(plan "crash:1@#2") 2 in
  Sim.Network.send net ~src:1 ~dst:2 0;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.bool "1 crashed" true (Sim.Network.crashed net 1);
  check Alcotest.int "deliveries" 3 (Sim.Network.deliveries net);
  check Alcotest.int "final echo dropped" 1 (Sim.Metrics.dropped (m net));
  check Alcotest.int "one crash" 1 (Sim.Metrics.crashes (m net))

let test_crashed_sender_suppressed () =
  (* A crash at t = 0 applies at creation: the processor is dead before
     its first send, which is suppressed without a send charge. *)
  let net = Sim.Network.create ~faults:(plan "crash:1@0") ~n:3 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  check Alcotest.bool "dead on arrival" true (Sim.Network.crashed net 1);
  Sim.Network.send net ~src:1 ~dst:2 0;
  Sim.Network.send net ~src:2 ~dst:3 0;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "no send charged to 1" 0 (Sim.Metrics.sent (m net) 1);
  check Alcotest.int "2 never heard from 1" 0 (Sim.Metrics.received (m net) 2);
  check Alcotest.bool "2 -> 3 unaffected" true
    (Sim.Metrics.received (m net) 3 >= 1);
  check Alcotest.int "suppressed send counted" 1
    (Sim.Metrics.dropped (m net) - 0)

let test_manual_crash_api () =
  (* Network.crash works on a net created without any plan. *)
  let net = Sim.Network.create ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  check Alcotest.bool "initially alive" false (Sim.Network.crashed net 2);
  Sim.Network.crash net 2;
  Sim.Network.crash net 2 (* idempotent *);
  check Alcotest.bool "now crashed" true (Sim.Network.crashed net 2);
  check Alcotest.int "counted once" 1 (Sim.Metrics.crashes (m net));
  Sim.Network.send net ~src:1 ~dst:2 0;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "message to corpse lost" 1 (Sim.Metrics.dropped (m net));
  check Alcotest.int "no delivery" 0 (Sim.Network.deliveries net)

let test_drop_all () =
  let net = Sim.Network.create ~faults:(plan "drop:1") ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  for _ = 1 to 5 do
    Sim.Network.send net ~src:1 ~dst:2 0
  done;
  check Alcotest.int "nothing pending" 0 (Sim.Network.pending net);
  check Alcotest.int "sends still charged" 5 (Sim.Metrics.sent (m net) 1);
  check Alcotest.int "nothing received" 0 (Sim.Metrics.received (m net) 2);
  check Alcotest.int "all dropped" 5 (Sim.Metrics.dropped (m net))

let test_duplicate_all () =
  let net = Sim.Network.create ~faults:(plan "dup:1") ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  for _ = 1 to 3 do
    Sim.Network.send net ~src:1 ~dst:2 0
  done;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "each message delivered twice" 6
    (Sim.Metrics.received (m net) 2);
  check Alcotest.int "three spurious copies" 3 (Sim.Metrics.duplicated (m net));
  check Alcotest.int "sends charged once" 3 (Sim.Metrics.sent (m net) 1)

let test_per_link_drop () =
  let net = Sim.Network.create ~faults:(plan "drop:1,2:1") ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  Sim.Network.send net ~src:1 ~dst:2 0;
  Sim.Network.send net ~src:2 ~dst:1 0;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "1 -> 2 dead link" 0 (Sim.Metrics.received (m net) 2);
  check Alcotest.int "2 -> 1 unaffected" 1 (Sim.Metrics.received (m net) 1);
  check Alcotest.int "one drop" 1 (Sim.Metrics.dropped (m net))

let test_partition_heals () =
  (* Processors 1-2 are cut off from 3-4 during [0, 5). A cross-cut send
     at t = 0 vanishes; the same send re-issued by a timer at t = 6 gets
     through; intra-side traffic is never affected. *)
  let net = Sim.Network.create ~faults:(plan "part:1-2@0,5") ~n:4 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  Sim.Network.send net ~src:1 ~dst:3 0 (* crosses the cut: lost *);
  Sim.Network.send net ~src:1 ~dst:2 0 (* same side: fine *);
  Sim.Network.send net ~src:3 ~dst:4 0 (* other side: fine *);
  Sim.Network.schedule_local net ~delay:6. (fun () ->
      Sim.Network.send net ~src:1 ~dst:3 0 (* healed: delivered *));
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "cut send lost" 1 (Sim.Metrics.dropped (m net));
  check Alcotest.int "post-heal send arrives" 1 (Sim.Metrics.received (m net) 3);
  check Alcotest.int "intra-side 1 -> 2" 1 (Sim.Metrics.received (m net) 2);
  check Alcotest.int "intra-side 3 -> 4" 1 (Sim.Metrics.received (m net) 4)

let test_recover_at_time () =
  (* 2 crashes at t = 1.5 and rejoins at t = 5: a probe at t = 2 dies on
     the corpse, a probe launched by timer at t = 6 is answered again. *)
  let net = Sim.Network.create ~faults:(plan "crash:2@1.5/recover:2@5") ~n:2 () in
  let replies = ref 0 in
  Sim.Network.set_handler net (fun ~self ~src (_ : int) ->
      if self = 2 then Sim.Network.send net ~src:2 ~dst:1 0
      else begin
        incr replies;
        ignore src
      end);
  Sim.Network.send net ~src:1 ~dst:2 0 (* t=1: answered (reply 1) *);
  Sim.Network.schedule_local net ~delay:2. (fun () ->
      Sim.Network.send net ~src:1 ~dst:2 0 (* t=3: dropped on corpse *));
  Sim.Network.schedule_local net ~delay:6. (fun () ->
      Sim.Network.send net ~src:1 ~dst:2 0 (* t=7: answered (reply 2) *));
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.bool "2 alive again" false (Sim.Network.crashed net 2);
  check Alcotest.bool "2 recovered" true (Sim.Network.recovered net 2);
  check Alcotest.bool "2 ever crashed" true (Sim.Network.ever_crashed net 2);
  check Alcotest.bool "1 never crashed" false (Sim.Network.ever_crashed net 1);
  check Alcotest.(list int) "rejoin pool" [ 2 ]
    (Sim.Network.recovered_processors net);
  check Alcotest.int "replies before and after" 2 !replies;
  check Alcotest.int "mid-outage probe lost" 1 (Sim.Metrics.dropped (m net));
  check Alcotest.int "one crash" 1 (Sim.Metrics.crashes (m net));
  check Alcotest.int "one recovery" 1 (Sim.Metrics.recoveries (m net))

let test_recover_then_recrash () =
  (* crash@1 / recover@3 / crash@5: the second crash clause re-applies
     after the revival, and the pool no longer lists the processor. *)
  let net =
    Sim.Network.create ~faults:(plan "crash:2@1/recover:2@3/crash:2@5") ~n:2 ()
  in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  Sim.Network.schedule_local net ~delay:4. (fun () ->
      check Alcotest.bool "alive between" false (Sim.Network.crashed net 2));
  Sim.Network.schedule_local net ~delay:6. (fun () ->
      check Alcotest.bool "down again" true (Sim.Network.crashed net 2));
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.bool "still down at quiescence" true (Sim.Network.crashed net 2);
  check Alcotest.(list int) "pool empty while down" []
    (Sim.Network.recovered_processors net);
  check Alcotest.int "two crash events" 2 (Sim.Metrics.crashes (m net));
  check Alcotest.int "one recovery" 1 (Sim.Metrics.recoveries (m net))

let test_recover_before_crash_is_noop () =
  (* A revival scheduled before the processor ever goes down fizzles; the
     later crash still applies. *)
  let net = Sim.Network.create ~faults:(plan "crash:2@9/recover:2@1") ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  Sim.Network.schedule_local net ~delay:10. (fun () -> ());
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.bool "crashed in the end" true (Sim.Network.crashed net 2);
  check Alcotest.int "no recovery fired" 0 (Sim.Metrics.recoveries (m net))

let test_trace_annotations () =
  let net = Sim.Network.create ~faults:(plan "drop:1") ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : int) -> ());
  Sim.Network.begin_op net ~origin:1;
  Sim.Network.send net ~src:1 ~dst:2 0;
  let tr = Sim.Network.end_op net in
  check Alcotest.int "one fault on the trace" 1 (Sim.Trace.fault_count tr);
  match Sim.Trace.faults tr with
  | [ f ] ->
      check Alcotest.bool "kind = Dropped" true (f.Sim.Trace.kind = Sim.Trace.Dropped);
      check Alcotest.(pair int int) "link" (1, 2)
        (f.Sim.Trace.fault_src, f.Sim.Trace.fault_dst)
  | _ -> Alcotest.fail "expected exactly one fault annotation"

let test_network_faults_accessor () =
  let f = plan "crash:2@1.5/drop:0.25" in
  let net = Sim.Network.create ~faults:f ~n:4 () in
  check Alcotest.string "plan round-trips through the net"
    (Sim.Fault.to_string f)
    (Sim.Fault.to_string (Sim.Network.faults net));
  let bare = Sim.Network.create ~n:4 () in
  check Alcotest.bool "default plan is none" true
    (Sim.Fault.is_none (Sim.Network.faults bare))

(* ------------------------------------------------------------------ *)
(* Failure-aware counters *)

let outcome_str o = Format.asprintf "%a" Counter.Counter_intf.pp_outcome o

let test_quorum_majority_completes_under_crashes () =
  (* n = 9, f = 4 = ceil(n/2) - 1 processors dead from the start: every
     operation by a live origin must still complete, and — majority
     quorums pairwise intersect — values stay sequential. *)
  let module QM = Baselines.Quorum_counter.Over_majority in
  let faults = plan "crash:1@0/crash:2@0/crash:3@0/crash:4@0" in
  let c = QM.create ~seed:11 ~n:9 ~faults () in
  check Alcotest.bool "victim crashed" true (QM.crashed c 1);
  check Alcotest.bool "origin alive" false (QM.crashed c 5);
  List.iteri
    (fun i origin ->
      match QM.inc_result c ~origin with
      | Counter.Counter_intf.Completed v ->
          check Alcotest.int
            (Printf.sprintf "op %d sequential" i)
            i v
      | Counter.Counter_intf.Stalled reason ->
          Alcotest.failf "live origin %d stalled: %s" origin reason)
    [ 5; 6; 7; 8; 9; 5; 6; 7 ]

let test_quorum_crashed_origin_stalls () =
  let module QM = Baselines.Quorum_counter.Over_majority in
  let c = QM.create ~seed:3 ~n:5 ~faults:(plan "crash:2@0") () in
  match QM.inc_result c ~origin:2 with
  | Counter.Counter_intf.Stalled _ -> ()
  | Counter.Counter_intf.Completed v ->
      Alcotest.failf "crashed origin completed with %d" v

let test_retire_counter_stalls_typed () =
  (* Kill every processor except the origin: the retirement tree's path
     is dead, so the operation can never answer. It must surface a typed
     Stalled outcome — not hang, not storm, not raise Failure. *)
  let module R = Core.Retire_counter in
  let faults =
    plan "crash:1@0/crash:2@0/crash:3@0/crash:4@0/crash:6@0/crash:7@0/crash:8@0"
  in
  let c = R.create ~n:8 ~seed:5 ~faults () in
  (match R.inc_result c ~origin:5 with
  | Counter.Counter_intf.Stalled reason ->
      check Alcotest.bool "reason is descriptive" true
        (String.length reason > 0)
  | Counter.Counter_intf.Completed v ->
      Alcotest.failf "operation completed with %d despite a dead tree" v);
  (* And the exception form for callers that use [inc] directly. *)
  match R.inc c ~origin:5 with
  | exception Counter.Counter_intf.Stall _ -> ()
  | v -> Alcotest.failf "inc returned %d despite a dead tree" v

let test_driver_tallies_stalls () =
  let report =
    Counter.Driver.run ~seed:9 ~faults:(plan "crash:1@0")
      Baselines.Registry.quorum_majority ~n:5 ~schedule:Counter.Schedule.Each_once
  in
  check Alcotest.int "ops" 5 report.Counter.Driver.ops;
  check Alcotest.int "one stall (the crashed origin)" 1
    report.Counter.Driver.stalled;
  check Alcotest.int "rest completed" 4 report.Counter.Driver.completed;
  check Alcotest.bool "run not correct" false
    (report.Counter.Driver.values_exact
    && report.Counter.Driver.sequentially_ordered);
  check Alcotest.(array int) "live values still sequential" [| 0; 1; 2; 3 |]
    report.Counter.Driver.values;
  check Alcotest.int "one reason per stall" 1
    (List.length report.Counter.Driver.stall_reasons)

let test_fault_run_reproducible () =
  (* Same (seed, plan) twice: identical outcomes and an identical
     per-processor load checksum — probabilistic faults draw from the
     network's seeded stream, nothing else. *)
  let module QM = Baselines.Quorum_counter.Over_majority in
  let run () =
    let c =
      QM.create ~seed:2024 ~n:9 ~faults:(plan "drop:0.05/dup:0.02") ()
    in
    let outcomes =
      List.map
        (fun origin -> outcome_str (QM.inc_result c ~origin))
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    in
    (outcomes, Sim.Metrics.checksum (QM.metrics c))
  in
  let o1, c1 = run () and o2, c2 = run () in
  check Alcotest.(list string) "outcomes agree" o1 o2;
  check Alcotest.int "checksums agree" c1 c2

let () =
  Alcotest.run "fault"
    [
      ( "grammar",
        [
          Alcotest.test_case "round-trips" `Quick test_parse_round_trips;
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "rejects malformed" `Quick test_parse_rejects;
          Alcotest.test_case "recover requires crash" `Quick
            test_recover_requires_crash;
          Alcotest.test_case "is_none" `Quick test_is_none;
          Alcotest.test_case "drop_on" `Quick test_drop_on;
          Alcotest.test_case "partitioned" `Quick test_partitioned;
          Alcotest.test_case "store plan statics" `Quick
            test_store_plan_statics;
        ] );
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest qcheck_delay_round_trip;
          QCheck_alcotest.to_alcotest qcheck_fault_round_trip;
        ] );
      ( "network",
        [
          Alcotest.test_case "crash at time" `Quick test_crash_at_time;
          Alcotest.test_case "crash after deliveries" `Quick
            test_crash_after_deliveries;
          Alcotest.test_case "crashed sender suppressed" `Quick
            test_crashed_sender_suppressed;
          Alcotest.test_case "manual crash API" `Quick test_manual_crash_api;
          Alcotest.test_case "drop all" `Quick test_drop_all;
          Alcotest.test_case "duplicate all" `Quick test_duplicate_all;
          Alcotest.test_case "per-link drop" `Quick test_per_link_drop;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "recover at time" `Quick test_recover_at_time;
          Alcotest.test_case "recover then re-crash" `Quick
            test_recover_then_recrash;
          Alcotest.test_case "recover before crash no-op" `Quick
            test_recover_before_crash_is_noop;
          Alcotest.test_case "trace annotations" `Quick test_trace_annotations;
          Alcotest.test_case "faults accessor" `Quick
            test_network_faults_accessor;
        ] );
      ( "counters",
        [
          Alcotest.test_case "quorum-majority completes under f=4/9 crashes"
            `Quick test_quorum_majority_completes_under_crashes;
          Alcotest.test_case "crashed origin stalls" `Quick
            test_quorum_crashed_origin_stalls;
          Alcotest.test_case "retire counter stalls typed" `Quick
            test_retire_counter_stalls_typed;
          Alcotest.test_case "driver tallies stalls" `Quick
            test_driver_tallies_stalls;
          Alcotest.test_case "fault runs reproducible" `Quick
            test_fault_run_reproducible;
        ] );
    ]
