(* Negative control for R1's join-publication clause: an
   Analysis.Replicate.parallel_map variant that snapshots the results
   array before joining its workers. drace must flag the pre-join read
   statically; at runtime the early snapshot deterministically misses
   every worker result (a gate holds all workers until the snapshot is
   taken, so this is not a lucky schedule). *)

let map_early ~domains f xs =
  let items = Array.of_list xs in
  let total = Array.length items in
  let domains = max 2 (min domains total) in
  let results = Array.make total None in
  let gate = Atomic.make false in
  let worker w () =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    let i = ref w in
    while !i < total do
      results.(!i) <- Some (f items.(!i));
      i := !i + domains
    done
  in
  let spawned =
    List.init (domains - 1) (fun w -> Domain.spawn (worker (w + 1)))
  in
  (* BUG under test: the coordinator publishes a view of [results]
     before the join (and before opening the gate). *)
  let early = Array.to_list results in
  Atomic.set gate true;
  worker 0 ();
  List.iter Domain.join spawned;
  let final =
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  in
  (List.filter_map Fun.id early, final)
