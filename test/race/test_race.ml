(* The racy negative controls prove drace load-bearing from both ends:
   statically (R1 must flag each control — same scan path as dcount
   lint) and dynamically (the schedules the analyzer rejects really do
   lose updates / publish incomplete results, deterministically). *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let drace_rules () =
  match Lint.Registry.resolve [ "drace" ] with
  | Ok rules -> rules
  | Error e -> Alcotest.failf "resolve drace: %s" e

let drace_findings file =
  let raw, directives =
    Lint.Driver.scan_source ~rules:(drace_rules ()) ~file (read_file file)
  in
  let kept, _ = Lint.Suppress.apply ~directives raw in
  List.map (fun d -> d.Lint.Diagnostic.rule) kept

(* The family name expands to all three rules, in id order. *)
let test_family_resolves () =
  Alcotest.(check (list string))
    "drace family" [ "R1"; "R2"; "R3" ]
    (List.map (fun r -> r.Lint.Rule.id) (drace_rules ()))

let test_flags_racy_par () =
  let rules = drace_findings "racy_par.ml" in
  Alcotest.(check bool)
    "R1 fires on the unprotected shared counter" true
    (List.mem "R1" rules)

let test_flags_racy_replicate () =
  let rules = drace_findings "racy_replicate.ml" in
  Alcotest.(check bool)
    "R1 fires on the pre-join read" true
    (List.mem "R1" rules)

(* The swept engine sources must be drace-clean through the same
   entry point the CLI uses — suppressions ledgered, nothing kept. *)
let test_swept_sources_clean () =
  List.iter
    (fun file ->
      let kept = drace_findings file in
      Alcotest.(check (list string)) (file ^ " drace-clean") [] kept)
    [ "../../lib/sim/par.ml"; "../../lib/analysis/replicate.ml" ]

let test_lost_update () =
  (* two increments, checksum 2 — the race keeps exactly one *)
  Alcotest.(check int) "lost update" 1 (Racy_par.forced_lost_update ())

let test_contended_never_exceeds () =
  let observed, expected = Racy_par.contended ~iters:50_000 () in
  Alcotest.(check bool)
    (Printf.sprintf "observed %d <= expected %d" observed expected)
    true
    (observed >= 2 && observed <= expected)

let test_early_read_incomplete () =
  let xs = List.init 16 (fun i -> i + 1) in
  let early, final = Racy_replicate.map_early ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "pre-join snapshot sees nothing" [] early;
  Alcotest.(check (list int))
    "joined result is the map" (List.map (fun x -> x * x) xs) final

let () =
  Alcotest.run "race"
    [
      ( "static",
        [
          Alcotest.test_case "drace family resolves" `Quick
            test_family_resolves;
          Alcotest.test_case "flags racy par" `Quick test_flags_racy_par;
          Alcotest.test_case "flags racy replicate" `Quick
            test_flags_racy_replicate;
          Alcotest.test_case "swept sources clean" `Quick
            test_swept_sources_clean;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "lost update" `Quick test_lost_update;
          Alcotest.test_case "contended bounded by checksum" `Quick
            test_contended_never_exceeds;
          Alcotest.test_case "early read incomplete" `Quick
            test_early_read_incomplete;
        ] );
    ]
