(* Negative control for R1 (domain-escape): a Par-shaped worker pool
   whose shared counter is a plain ref, deliberately unprotected. drace
   must flag it statically (make lint-race) and test_race pins down the
   runtime misbehaviour. Lives under test/ precisely so the library
   lint gate (make lint) never sees it. *)

(* Classic lost update, made deterministic: both sides read the counter
   before either is allowed to write it (the Atomic flags only build
   the schedule — the racy state is [counter] itself). The sequential
   checksum is 2; this returns 1 on every run, on any hardware. *)
let forced_lost_update () =
  let counter = ref 0 in
  let flag_a = Atomic.make false in
  let flag_b = Atomic.make false in
  let stepper my_flag other_flag () =
    let seen = !counter in
    Atomic.set my_flag true;
    while not (Atomic.get other_flag) do
      Domain.cpu_relax ()
    done;
    counter := seen + 1
  in
  let d = Domain.spawn (stepper flag_a flag_b) in
  stepper flag_b flag_a ();
  Domain.join d;
  !counter

(* Free-running contention: two domains hammer the same unprotected
   counter. The observed total can fall anywhere in [2, expected]; all
   a test can assert deterministically is that it never exceeds the
   checksum (and the static analyzer must reject the pattern). *)
let contended ~iters () =
  let counter = ref 0 in
  let hammer () =
    for _ = 1 to iters do
      incr counter
    done
  in
  let d = Domain.spawn hammer in
  hammer ();
  Domain.join d;
  (!counter, 2 * iters)
