(* The delivery-interleaving model checker: exhaustive verification of
   small configurations, violation hunting on the deliberately broken
   counters, deterministic counterexample replay, and the pruning /
   budget machinery. *)

let check = Alcotest.check

let get name =
  match Baselines.Registry.find name with
  | Some c -> c
  | None -> Alcotest.failf "counter %s not in registry" name

let explore ?faults ?config ?(schedule = Counter.Schedule.Each_once) name ~n =
  Mc.Explore.check ?faults ?config (get name) ~n ~schedule

let is_exhausted (o : Mc.Explore.outcome) =
  match o.verdict with Mc.Explore.Exhausted_ok -> true | _ -> false

let the_violation (o : Mc.Explore.outcome) =
  match o.verdict with
  | Mc.Explore.Violation_found v -> v
  | Mc.Explore.Exhausted_ok -> Alcotest.fail "expected a violation, got ok"
  | Mc.Explore.Budget_exhausted ->
      Alcotest.fail "expected a violation, got budget exhaustion"

(* ------------------------------------------------------------------ *)
(* Exhaustive verification of correct counters *)

let test_central_exhaustive () =
  List.iter
    (fun n ->
      let o = explore "central" ~n in
      check Alcotest.bool "exhausted" true (is_exhausted o);
      check Alcotest.bool "at least one execution" true
        (o.stats.Mc.Explore.executions >= 1))
    [ 2; 3; 4; 5 ]

let test_simple_counters_exhaustive () =
  (* One message in flight at a time under the sequential model: a single
     execution covers the whole space, and it must be clean. *)
  List.iter
    (fun name ->
      let o = explore name ~n:4 in
      check Alcotest.bool (name ^ " exhausted") true (is_exhausted o))
    [ "static-tree"; "combining"; "counting-net"; "diffracting" ]

let test_retire_tree_exhaustive_small () =
  (* Full each-once at n = 8 explodes once retirements cascade (measured:
     > 3M decision points by the 4th operation), so the exhaustive claim
     is made on 3-operation prefixes, where the space is ~1.4k states. *)
  let o =
    explore "retire-tree" ~n:8
      ~schedule:(Counter.Schedule.Explicit [ 1; 8; 4 ])
  in
  check Alcotest.bool "exhausted" true (is_exhausted o);
  check Alcotest.bool "real branching explored" true
    (o.stats.Mc.Explore.executions > 10)

let test_quorum_exhaustive_small () =
  (* Fault-free quorum keeps exactly one message in flight (the origin
     polls replicas in turn), so the whole space is one execution — a
     structural fact worth pinning: branching only appears under crash
     plans, where timeouts and retransmissions overlap. *)
  let o =
    explore "quorum-majority" ~n:3
      ~schedule:(Counter.Schedule.Explicit [ 1; 2 ])
  in
  check Alcotest.bool "exhausted" true (is_exhausted o);
  check Alcotest.int "sequential: a single execution" 1
    o.stats.Mc.Explore.executions;
  check Alcotest.int "never two messages pending" 1
    o.stats.Mc.Explore.max_enabled

(* ------------------------------------------------------------------ *)
(* Broken counters *)

let test_amnesiac_violation_no_decisions () =
  (* No messages => no decision points: the violation shows up on the
     single empty-schedule execution. *)
  let o = explore "amnesiac" ~n:4 in
  let v = the_violation o in
  check Alcotest.string "property" "values-wrong"
    (Mc.Explore.property_name v.Mc.Explore.property);
  check Alcotest.(list string) "no decisions" []
    (List.map Mc.Enabled.to_token v.Mc.Explore.decisions)

let test_race_reply_needs_adversarial_order () =
  (* The whole point of the model checker: the default delivery order
     hides this bug from every schedule-sweep test... *)
  let r = Counter.Driver.run_each_once (get "race-reply") ~n:3 in
  check Alcotest.bool "driver sees a correct counter" true
    (r.Counter.Driver.values_exact && r.Counter.Driver.sequentially_ordered);
  let stats =
    Core.Exhaustive.verify_counter (get "race-reply") ~n:3
  in
  check Alcotest.bool "exhaustive op-order sweep sees a correct counter" true
    stats.Core.Exhaustive.all_correct;
  (* ...and adversarial delivery order exposes it. *)
  let v = the_violation (explore "race-reply" ~n:3) in
  check Alcotest.string "property" "values-wrong"
    (Mc.Explore.property_name v.Mc.Explore.property)

let test_race_reply_violation_replays () =
  let v = the_violation (explore "race-reply" ~n:3) in
  match
    Mc.Explore.run_schedule (get "race-reply") ~n:3
      ~schedule:Counter.Schedule.Each_once ~decisions:v.Mc.Explore.decisions
  with
  | Error e -> Alcotest.failf "replay diverged: %s" e
  | Ok None -> Alcotest.fail "replay was clean"
  | Ok (Some v') ->
      check Alcotest.string "same property"
        (Mc.Explore.property_name v.Mc.Explore.property)
        (Mc.Explore.property_name v'.Mc.Explore.property);
      check Alcotest.string "same detail" v.Mc.Explore.detail
        v'.Mc.Explore.detail

(* ------------------------------------------------------------------ *)
(* Counterexample files *)

let test_counterexample_round_trip () =
  let v = the_violation (explore "race-reply" ~n:3) in
  let cx =
    Mc.Replay.of_violation ~counter:"race-reply" ~n:3 ~seed:42
      ~schedule:Counter.Schedule.Each_once ~faults:Sim.Fault.none v
  in
  let s = Mc.Replay.to_string cx in
  (match Mc.Replay.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cx' ->
      check Alcotest.bool "round trip" true (cx = cx');
      check Alcotest.string "canonical" s (Mc.Replay.to_string cx'));
  check Alcotest.bool "reproduces" true
    (Mc.Replay.reproduces (get "race-reply") cx)

(* Under `dune runtest` the cwd is the test sandbox (data/ copied in by
   the stanza's deps); under a bare `dune exec` it is the repo root. *)
let data_file name =
  let local = Filename.concat "data" name in
  if Sys.file_exists local then local
  else Filename.concat "test" (Filename.concat "data" name)

let test_stored_counterexample_is_canonical () =
  (* The stored file must be byte-for-byte what the checker would emit
     today — the same comparison `make test-mc` performs. *)
  let stored =
    In_channel.with_open_text (data_file "race_reply_n3.mcs")
      In_channel.input_all
  in
  let v = the_violation (explore "race-reply" ~n:3) in
  let cx =
    Mc.Replay.of_violation ~counter:"race-reply" ~n:3 ~seed:42
      ~schedule:Counter.Schedule.Each_once ~faults:Sim.Fault.none v
  in
  check Alcotest.string "byte-for-byte" stored (Mc.Replay.to_string cx);
  match Mc.Replay.of_string stored with
  | Error e -> Alcotest.failf "stored file unparseable: %s" e
  | Ok stored_cx ->
      check Alcotest.bool "stored file reproduces its violation" true
        (Mc.Replay.reproduces (get "race-reply") stored_cx)

let test_counterexample_rejects_garbage () =
  let bad s =
    match Mc.Replay.of_string s with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "missing fields" true (bad "counter=central\n");
  check Alcotest.bool "bad token" true
    (bad
       "counter=central\nn=3\nseed=1\nschedule=each-once\nfaults=none\n\
        property=values-wrong\ndecisions=1>>2\n");
  check Alcotest.bool "bad property" true
    (bad
       "counter=central\nn=3\nseed=1\nschedule=each-once\nfaults=none\n\
        property=nonsense\ndecisions=\n")

let test_run_schedule_rejects_divergent () =
  match
    Mc.Explore.run_schedule (get "central") ~n:3
      ~schedule:Counter.Schedule.Each_once
      ~decisions:[ Mc.Enabled.Link (3, 2) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a non-enabled decision must be an error"

(* ------------------------------------------------------------------ *)
(* Pruning and budgets *)

let test_prune_modes_agree () =
  List.iter
    (fun (name, n, schedule) ->
      let outcome prune =
        Mc.Explore.check
          ~config:{ Mc.Explore.default_config with prune }
          (get name) ~n ~schedule
      in
      let sleep = outcome Mc.Prune.Sleep and none = outcome Mc.Prune.No_prune in
      let verdict_name (o : Mc.Explore.outcome) =
        match o.verdict with
        | Mc.Explore.Exhausted_ok -> "ok"
        | Mc.Explore.Violation_found v ->
            "violation:" ^ Mc.Explore.property_name v.Mc.Explore.property
        | Mc.Explore.Budget_exhausted -> "budget"
      in
      check Alcotest.string
        (Printf.sprintf "%s n=%d verdicts agree" name n)
        (verdict_name none) (verdict_name sleep);
      check Alcotest.bool
        (Printf.sprintf "%s n=%d sleep explores no more executions" name n)
        true
        (sleep.stats.Mc.Explore.executions <= none.stats.Mc.Explore.executions))
    [
      ("central", 4, Counter.Schedule.Each_once);
      ("race-reply", 3, Counter.Schedule.Each_once);
      ("retire-tree", 8, Counter.Schedule.Explicit [ 1; 8 ]);
      ("quorum-majority", 3, Counter.Schedule.Explicit [ 1; 2 ]);
    ]

let test_sleep_actually_prunes () =
  (* Two concurrent retire-tree operations overlap heavily on disjoint
     links; sleep sets collapse the commuting reorderings (measured:
     16 executions vs 120 without pruning). *)
  let outcome prune =
    Mc.Explore.check
      ~config:{ Mc.Explore.default_config with prune }
      (get "retire-tree") ~n:8
      ~schedule:(Counter.Schedule.Explicit [ 1; 8 ])
  in
  let sleep = outcome Mc.Prune.Sleep and none = outcome Mc.Prune.No_prune in
  check Alcotest.bool "fewer executions under sleep sets" true
    (sleep.stats.Mc.Explore.executions < none.stats.Mc.Explore.executions);
  check Alcotest.bool "skips counted" true
    (sleep.stats.Mc.Explore.sleep_skips > 0)

let test_budget_exhaustion_is_typed () =
  let o =
    explore "retire-tree" ~n:8
      ~config:{ Mc.Explore.default_config with max_states = 100 }
  in
  (match o.verdict with
  | Mc.Explore.Budget_exhausted -> ()
  | _ -> Alcotest.fail "expected Budget_exhausted");
  check Alcotest.int "stopped at the budget" 100 o.stats.Mc.Explore.states

let test_depth_cap_downgrades_verdict () =
  let o =
    explore "central" ~n:4
      ~config:{ Mc.Explore.default_config with max_depth = 2 }
  in
  match o.verdict with
  | Mc.Explore.Budget_exhausted ->
      check Alcotest.bool "capped decisions counted" true
        (o.stats.Mc.Explore.depth_capped > 0)
  | _ -> Alcotest.fail "a depth-capped exploration must not claim exhaustion"

(* ------------------------------------------------------------------ *)
(* Crash-fault branching *)

let crash_plan spec =
  match Sim.Fault.of_string spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad plan %s: %s" spec e

let test_crash_branching_central () =
  (* Crashing the holder adversarially at every point: operations may
     stall, values may gap, but no duplicate value may ever appear. *)
  let o = explore "central" ~n:3 ~faults:(crash_plan "crash:1@99") in
  check Alcotest.bool "exhausted" true (is_exhausted o);
  check Alcotest.bool "crash choices branch the space" true
    (o.stats.Mc.Explore.executions > 1);
  check Alcotest.bool "crash widens enabled sets" true
    (o.stats.Mc.Explore.max_enabled >= 2)

let test_crash_branching_quorum () =
  (* Crashing a replica turns sequential quorum polling into a genuinely
     concurrent space (timeouts and retransmissions overlap) that blows
     any small budget even for one operation — so this is a bounded
     search: no violation may surface in the explored prefix. *)
  let o =
    explore "quorum-majority" ~n:3
      ~schedule:(Counter.Schedule.Explicit [ 1 ])
      ~faults:(crash_plan "crash:3@99")
      ~config:{ Mc.Explore.default_config with max_states = 20_000 }
  in
  (match o.verdict with
  | Mc.Explore.Violation_found v ->
      Alcotest.failf "violation under crash: %s" v.Mc.Explore.detail
  | Mc.Explore.Exhausted_ok | Mc.Explore.Budget_exhausted -> ());
  check Alcotest.bool "crash widens the space past the sequential case" true
    (o.stats.Mc.Explore.max_enabled > 1)

let test_probabilistic_plans_rejected () =
  Alcotest.check_raises "drop plans cannot be model-checked"
    (Invalid_argument
       "Mc.Explore: probabilistic fault clauses (drop/dup/partitions) \
        cannot be model-checked; only crash/recover victims are supported")
    (fun () -> ignore (explore "central" ~n:3 ~faults:(crash_plan "drop:0.5")));
  Alcotest.check_raises "store plans cannot be model-checked"
    (Invalid_argument
       "Mc.Explore: store-RPC fault clauses (sdrop/sdup/sslow/sout) cannot \
        be model-checked; the adversary already owns delivery \
        nondeterminism, including store traffic")
    (fun () -> ignore (explore "durable" ~n:2 ~faults:(crash_plan "sdup:0.5")))

(* ------------------------------------------------------------------ *)
(* Durable counter: the recover adversary and the oswald spec properties *)

let recover_plan = crash_plan "crash:1@99/recover:1@120"

(* [Core.Durable_counter] at the negative control's aggressive cadence
   (roll every record, snapshot every count) but with CAS intact — the
   exact pairing that shows the compare-and-swap is what stands between
   the durable counter and the stored manifest regression. *)
let durable_cas_tight : Counter.Counter_intf.counter =
  (module struct
    module D = Core.Durable_counter

    type t = D.t

    let name = "durable-cas-tight"
    let describe = "durable counter at the negative control's cadence"
    let supported_n = D.supported_n

    let create ?seed ?delay ?faults ~n () =
      D.create_raw ?seed ?delay ?faults ~cas:true ~chunk_records:1
        ~snap_every:1 ~n ()

    let n = D.n
    let value = D.value
    let metrics = D.metrics
    let traces = D.traces
    let inc = D.inc
    let inc_result = D.inc_result
    let crashed = D.crashed
    let clone = D.clone
  end)

let test_durable_exhaustive_fault_free () =
  (* Fault-free, the durable counter is disarmed: no retry timers, a
     sequential store pipeline — the space stays small and every
     interleaving must satisfy every property, the WAL monitor's
     included. *)
  let o =
    explore "durable" ~n:2 ~schedule:(Counter.Schedule.Explicit [ 2; 2; 2 ])
  in
  check Alcotest.bool "exhausted" true (is_exhausted o)

let test_durable_crash_recover_bounded () =
  (* Crash the writer and revive it at every adversarial point: bounded
     search (retry timers explode the space), no violation may surface —
     including CounterProgress, checked on executions where the victim
     was revived. *)
  let o =
    explore "durable" ~n:2
      ~schedule:(Counter.Schedule.Explicit [ 2; 2 ])
      ~faults:recover_plan
      ~config:
        {
          Mc.Explore.default_config with
          max_states = 20_000;
          max_depth = 12;
          check_progress = true;
        }
  in
  (match o.verdict with
  | Mc.Explore.Violation_found v ->
      Alcotest.failf "violation under crash/recover: %s" v.Mc.Explore.detail
  | Mc.Explore.Exhausted_ok | Mc.Explore.Budget_exhausted -> ());
  check Alcotest.bool "recover adversary widens the space" true
    (o.stats.Mc.Explore.max_enabled >= 3)

let no_cas_hunt_config =
  { Mc.Explore.default_config with max_states = 300_000; max_depth = 10 }

let test_durable_no_cas_finds_manifest_regression () =
  let v =
    the_violation
      (explore "durable-no-cas" ~n:2
         ~schedule:(Counter.Schedule.Explicit [ 2 ])
         ~faults:recover_plan ~config:no_cas_hunt_config)
  in
  check Alcotest.string "property" "manifest-regressed"
    (Mc.Explore.property_name v.Mc.Explore.property);
  (* The minimal counterexample needs the full adversary: a crash, a
     revival and a reordered stale store write. *)
  let has k = List.exists (fun d -> Mc.Enabled.equal d k) v.Mc.Explore.decisions in
  check Alcotest.bool "crashes the writer" true (has (Mc.Enabled.Crash 1));
  check Alcotest.bool "revives the writer" true (has (Mc.Enabled.Recover 1))

let test_durable_cas_survives_no_cas_hunt () =
  (* Same cadence, same adversary, same budget as the hunt above — with
     CAS the stale manifest write bounces off and nothing is found. *)
  let o =
    Mc.Explore.check ~faults:recover_plan ~config:no_cas_hunt_config
      durable_cas_tight ~n:2
      ~schedule:(Counter.Schedule.Explicit [ 2 ])
  in
  match o.Mc.Explore.verdict with
  | Mc.Explore.Violation_found v ->
      Alcotest.failf "CAS failed to protect the manifest: %s"
        v.Mc.Explore.detail
  | Mc.Explore.Exhausted_ok | Mc.Explore.Budget_exhausted -> ()

let test_stored_durable_counterexample () =
  (* Byte-for-byte what the hunt emits today (the comparison `make
     test-mc` performs on the CLI path), and it must still reproduce. *)
  let stored =
    In_channel.with_open_text (data_file "durable_no_cas_n2.mcs")
      In_channel.input_all
  in
  let v =
    the_violation
      (explore "durable-no-cas" ~n:2
         ~schedule:(Counter.Schedule.Explicit [ 2 ])
         ~faults:recover_plan ~config:no_cas_hunt_config)
  in
  let cx =
    Mc.Replay.of_violation ~counter:"durable-no-cas" ~n:2 ~seed:42
      ~schedule:(Counter.Schedule.Explicit [ 2 ])
      ~faults:recover_plan v
  in
  check Alcotest.string "byte-for-byte" stored (Mc.Replay.to_string cx);
  match Mc.Replay.of_string stored with
  | Error e -> Alcotest.failf "stored file unparseable: %s" e
  | Ok stored_cx ->
      check Alcotest.string "stored property" "manifest-regressed"
        stored_cx.Mc.Replay.property;
      check Alcotest.bool "stored file reproduces its violation" true
        (Mc.Replay.reproduces (get "durable-no-cas") stored_cx)

(* ------------------------------------------------------------------ *)
(* Decision tokens *)

let test_token_round_trip () =
  List.iter
    (fun key ->
      match Mc.Enabled.of_token (Mc.Enabled.to_token key) with
      | Ok key' -> check Alcotest.bool "round trip" true (Mc.Enabled.equal key key')
      | Error e -> Alcotest.failf "token failed: %s" e)
    [ Mc.Enabled.Link (1, 2); Mc.Enabled.Link (12, 7); Mc.Enabled.Timer;
      Mc.Enabled.Crash 3; Mc.Enabled.Linkn (1, 2, 3);
      Mc.Enabled.Linkn (12, 7, 0); Mc.Enabled.Recover 2 ]

let test_independence_is_symmetric () =
  let keys =
    [ Mc.Enabled.Link (1, 2); Mc.Enabled.Link (2, 1); Mc.Enabled.Link (3, 4);
      Mc.Enabled.Timer; Mc.Enabled.Crash 1; Mc.Enabled.Crash 4 ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check Alcotest.bool "symmetric"
            (Mc.Enabled.independent a b)
            (Mc.Enabled.independent b a))
        keys)
    keys;
  (* Spot checks of the receiver-locality relation. *)
  check Alcotest.bool "disjoint links commute" true
    (Mc.Enabled.independent (Mc.Enabled.Link (1, 2)) (Mc.Enabled.Link (3, 4)));
  check Alcotest.bool "same destination conflicts" false
    (Mc.Enabled.independent (Mc.Enabled.Link (1, 2)) (Mc.Enabled.Link (3, 2)));
  check Alcotest.bool "delivery to a sender conflicts" false
    (Mc.Enabled.independent (Mc.Enabled.Link (1, 2)) (Mc.Enabled.Link (2, 3)));
  check Alcotest.bool "timer conflicts with everything" false
    (Mc.Enabled.independent Mc.Enabled.Timer (Mc.Enabled.Link (3, 4)));
  check Alcotest.bool "crash commutes with unrelated link" true
    (Mc.Enabled.independent (Mc.Enabled.Crash 4) (Mc.Enabled.Link (1, 2)));
  check Alcotest.bool "two messages on one unordered link conflict" false
    (Mc.Enabled.independent
       (Mc.Enabled.Linkn (1, 3, 0))
       (Mc.Enabled.Linkn (1, 3, 4)));
  check Alcotest.bool "unordered deliveries on disjoint links commute" true
    (Mc.Enabled.independent
       (Mc.Enabled.Linkn (1, 3, 0))
       (Mc.Enabled.Linkn (4, 5, 2)));
  check Alcotest.bool "crash and revival of one victim conflict" false
    (Mc.Enabled.independent (Mc.Enabled.Crash 1) (Mc.Enabled.Recover 1));
  check Alcotest.bool "revival commutes with an unrelated link" true
    (Mc.Enabled.independent (Mc.Enabled.Recover 4) (Mc.Enabled.Linkn (1, 3, 0)))

let () =
  Alcotest.run "mc"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "central 2..5" `Quick test_central_exhaustive;
          Alcotest.test_case "simple counters" `Quick
            test_simple_counters_exhaustive;
          Alcotest.test_case "retire-tree 3 ops" `Quick
            test_retire_tree_exhaustive_small;
          Alcotest.test_case "quorum 2 ops" `Quick test_quorum_exhaustive_small;
        ] );
      ( "broken",
        [
          Alcotest.test_case "amnesiac, zero decisions" `Quick
            test_amnesiac_violation_no_decisions;
          Alcotest.test_case "race-reply invisible to default order" `Quick
            test_race_reply_needs_adversarial_order;
          Alcotest.test_case "race-reply replays" `Quick
            test_race_reply_violation_replays;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "round trip" `Quick test_counterexample_round_trip;
          Alcotest.test_case "stored file canonical" `Quick
            test_stored_counterexample_is_canonical;
          Alcotest.test_case "garbage rejected" `Quick
            test_counterexample_rejects_garbage;
          Alcotest.test_case "divergent decisions rejected" `Quick
            test_run_schedule_rejects_divergent;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "modes agree" `Quick test_prune_modes_agree;
          Alcotest.test_case "sleep prunes" `Quick test_sleep_actually_prunes;
          Alcotest.test_case "state budget" `Quick
            test_budget_exhaustion_is_typed;
          Alcotest.test_case "depth cap" `Quick
            test_depth_cap_downgrades_verdict;
        ] );
      ( "faults",
        [
          Alcotest.test_case "central holder crash" `Quick
            test_crash_branching_central;
          Alcotest.test_case "quorum crash" `Quick test_crash_branching_quorum;
          Alcotest.test_case "probabilistic rejected" `Quick
            test_probabilistic_plans_rejected;
        ] );
      ( "durable",
        [
          Alcotest.test_case "fault-free exhaustive" `Quick
            test_durable_exhaustive_fault_free;
          Alcotest.test_case "crash/recover bounded" `Quick
            test_durable_crash_recover_bounded;
          Alcotest.test_case "no-cas manifest regression" `Quick
            test_durable_no_cas_finds_manifest_regression;
          Alcotest.test_case "cas survives the same hunt" `Quick
            test_durable_cas_survives_no_cas_hunt;
          Alcotest.test_case "stored counterexample canonical" `Quick
            test_stored_durable_counterexample;
        ] );
      ( "tokens",
        [
          Alcotest.test_case "round trip" `Quick test_token_round_trip;
          Alcotest.test_case "independence" `Quick
            test_independence_is_symmetric;
        ] );
    ]
