(* Tests for the failure-aware retirement tree (Core.Retire_ft):

   - golden determinism: under Fault.none the counter is bit-identical to
     Retire_counter (same values, same metrics checksum, same traces);
   - liveness under crashes: every live-origin inc completes and the
     values handed out are exactly 0 .. m-1, for random seeds and crash
     plans with fewer victims than the overflow pool (qcheck);
   - recovery/rejoin: recovered processors re-enter the allocator pool
     and are re-hired into fresh roles, never resuming stale ones;
   - the deliberately-broken no-emergency-handoff variant loses the
     counter value (the positive control for the model-check negative
     control in test/data/). *)

let check = Alcotest.check

module R = Core.Retire_counter
module F = Core.Retire_ft

let plan s =
  match Sim.Fault.of_string s with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad plan %S: %s" s e

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Golden determinism: Fault.none must disarm the failure-aware client
   entirely.                                                           *)

let test_golden_matches_retire_counter () =
  List.iter
    (fun (k, seed) ->
      let n = Core.Params.n_of_k k in
      let r = R.create ~seed ~n () in
      let f = F.create ~seed ~n () in
      for origin = 1 to n do
        let a = R.inc r ~origin and b = F.inc f ~origin in
        check Alcotest.int (Printf.sprintf "k=%d op %d" k origin) a b
      done;
      check Alcotest.int "same metrics checksum"
        (Sim.Metrics.checksum (R.metrics r))
        (Sim.Metrics.checksum (F.metrics f));
      check Alcotest.int "same total bits" (R.total_bits r) (F.total_bits f);
      check Alcotest.int "same max message bits" (R.max_message_bits r)
        (F.max_message_bits f);
      check Alcotest.int "same retirements" (R.total_retirements r)
        (F.total_retirements f);
      check Alcotest.int "same stale forwards" (R.stale_forwards r)
        (F.stale_forwards f);
      let shape t =
        List.map
          (fun tr -> (Sim.Trace.message_count tr, Sim.Trace.processors tr))
          t
      in
      Alcotest.(check (list (pair int (list int))))
        "same trace shapes"
        (shape (R.traces r))
        (shape (F.traces f)))
    [ (2, 42); (2, 7); (3, 42) ]

let test_fault_none_explicit_plan_also_golden () =
  (* Passing Fault.none explicitly must not arm the client either. *)
  let n = 8 in
  let r = R.create ~seed:11 ~n () in
  let f = F.create ~seed:11 ~faults:Sim.Fault.none ~n () in
  Alcotest.(check bool) "client disarmed" false (F.failure_aware f);
  for origin = 1 to n do
    check Alcotest.int "value" (R.inc r ~origin) (F.inc f ~origin)
  done;
  check Alcotest.int "checksum"
    (Sim.Metrics.checksum (R.metrics r))
    (Sim.Metrics.checksum (F.metrics f))

(* ------------------------------------------------------------------ *)
(* Liveness under crashes                                              *)

let live_origins_complete ~seed ~k ~fault_str =
  let faults = plan fault_str in
  let n = Core.Params.n_of_k k in
  let victims = Sim.Fault.crash_processors faults in
  let f = F.create ~seed ~faults ~n () in
  let live = List.filter (fun o -> not (List.mem o victims)) (List.init n (fun i -> i + 1)) in
  List.iteri
    (fun i origin ->
      check Alcotest.int
        (Printf.sprintf "seed=%d %s op %d (origin %d)" seed fault_str i origin)
        i (F.inc f ~origin))
    live;
  f

let test_survives_root_worker_crash () =
  (* Processor 1 starts as the root's worker: kill it before the first
     operation and the very first inc must emergency-retire the root. *)
  let f = live_origins_complete ~seed:42 ~k:2 ~fault_str:"crash:1@0" in
  Alcotest.(check bool) "emergency retirements happened" true
    (Sim.Metrics.emergency_retirements (F.metrics f) >= 1)

let test_survives_midrun_crashes () =
  ignore
    (live_origins_complete ~seed:3 ~k:2 ~fault_str:"crash:2@100/crash:5@300");
  ignore (live_origins_complete ~seed:9 ~k:3 ~fault_str:"crash:1@50/crash:4@200")

let test_crashed_origin_stalls_with_reason () =
  let faults = plan "crash:3@0" in
  let f = F.create ~seed:42 ~faults ~n:8 () in
  (match F.inc_result f ~origin:3 with
  | Counter.Counter_intf.Stalled reason ->
      Alcotest.(check bool)
        (Printf.sprintf "reason mentions origin crash: %s" reason)
        true
        (contains ~sub:"origin" reason)
  | Completed v -> Alcotest.failf "crashed origin completed with %d" v);
  (* The counter keeps serving everyone else. *)
  check Alcotest.int "next live origin" 0 (F.inc f ~origin:4)

let test_recover_rejoins_pool_not_role () =
  (* Processor 1 (root worker) crashes at t=0 and recovers at t=50.
     Recovery must put it in the rejoin pool; it must not silently resume
     the root role it lost. *)
  let faults = plan "crash:1@0/recover:1@50" in
  let n = 8 in
  let f = F.create ~seed:42 ~faults ~n () in
  check Alcotest.int "first inc completes" 0 (F.inc f ~origin:2);
  (* Root was emergency-retired away from processor 1. *)
  Alcotest.(check bool) "root left the corpse" true
    (F.node_worker f Core.Tree.root <> 1);
  (* Burn virtual time until past the recovery, then keep counting. *)
  for i = 1 to n - 2 do
    check Alcotest.int "inc" i (F.inc f ~origin:(i + 2))
  done;
  check Alcotest.int "recovered once" 1
    (Sim.Metrics.recoveries (F.metrics f))

let test_recovered_processor_is_rehired_first () =
  (* Kill the root's worker (processor 1) and a spare (processor 2) that
     recovers early; with a zero overflow budget the only way the first
     inc can complete is by re-hiring the recovered processor from the
     rejoin pool into the root role. Origin 5's path (workers 7, 3, 1 at
     t=0 for k=2) keeps the root the only dead role on the path. *)
  let faults = plan "crash:1@0/crash:2@0/recover:2@5" in
  let f =
    F.create_with ~seed:42 ~faults ~overflow_pool:0 (F.paper_config ~k:2)
  in
  check Alcotest.int "first live inc" 0 (F.inc f ~origin:5);
  Alcotest.(check bool) "emergency retirement happened" true
    (Sim.Metrics.emergency_retirements (F.metrics f) >= 1);
  check Alcotest.int "no overflow budget consumed" 0 (F.emergency_hires f);
  check Alcotest.int "recovered processor took the role" 2
    (F.node_worker f Core.Tree.root);
  for i = 1 to 4 do
    check Alcotest.int "keeps counting" i (F.inc f ~origin:(i + 4))
  done

let test_overflow_pool_exhaustion_stalls () =
  (* With a zero emergency budget and no recovered processors, the first
     emergency retirement must stall with the documented reason. *)
  let faults = plan "crash:1@0" in
  let f =
    F.create_with ~seed:42 ~faults ~overflow_pool:0 (F.paper_config ~k:2)
  in
  match F.inc_result f ~origin:2 with
  | Stalled reason ->
      Alcotest.(check bool)
        (Printf.sprintf "mentions the pool: %s" reason)
        true
        (Astring.String.is_infix ~affix:"pool" reason)
  | Completed v -> Alcotest.failf "completed with %d despite empty pool" v

let test_broken_variant_loses_values () =
  (* Positive control for the stored model-check counterexample: with the
     emergency handoff disabled, killing the root's worker after the
     first operation makes the fresh root restart at zero — a duplicate
     value. (The first op takes 4 deliveries; crash after 6 kills the
     root's processor mid-way through the second op.) *)
  let faults = plan "crash:1@#6" in
  let f =
    F.create_with ~seed:42 ~faults ~emergency_handoff:false
      (F.paper_config ~k:2)
  in
  let a = F.inc f ~origin:2 in
  let b = F.inc f ~origin:3 in
  check Alcotest.int "first value" 0 a;
  check Alcotest.int "duplicate value" 0 b

let test_emergency_nodes_reported () =
  let faults = plan "crash:1@0" in
  let f = F.create ~seed:42 ~faults ~n:8 () in
  ignore (F.inc f ~origin:2);
  Alcotest.(check bool) "root among emergency-retired nodes" true
    (List.mem Core.Tree.root (F.emergency_nodes f));
  ignore (F.inc f ~origin:3);
  Alcotest.(check (list int)) "per-op data resets" [] (F.emergency_nodes f)

let test_determinism_under_crash_plan () =
  (* Same (seed, plan, schedule) -> same values, same checksum. *)
  let run () =
    let faults = plan "crash:2@40/crash:5@500/recover:2@600" in
    let f = F.create ~seed:7 ~faults ~n:8 () in
    let values = ref [] in
    for o = 1 to 8 do
      match F.inc_result f ~origin:o with
      | Completed v -> values := v :: !values
      | Stalled _ -> values := -1 :: !values
    done;
    (!values, Sim.Metrics.checksum (F.metrics f))
  in
  let a = run () and b = run () in
  Alcotest.(check (pair (list int) int)) "replay identical" a b

let test_clone_equivalent_under_faults () =
  let faults = plan "crash:2@40" in
  let f = F.create ~seed:7 ~faults ~n:8 () in
  ignore (F.inc f ~origin:1);
  let g = F.clone f in
  for o = 3 to 8 do
    let a = F.inc_result f ~origin:o and b = F.inc_result g ~origin:o in
    let show = function
      | Counter.Counter_intf.Completed v -> Printf.sprintf "ok:%d" v
      | Stalled r -> "stall:" ^ r
    in
    check Alcotest.string "clone agrees" (show a) (show b)
  done

(* ------------------------------------------------------------------ *)
(* qcheck: liveness for random seeds and crash plans below the pool     *)

let prop_live_origins_get_permutation =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:
         "every live-origin inc completes; values are exactly 0..m-1 \
          (crashes < overflow pool)"
       ~count:40
       QCheck2.Gen.(
         tup3 (int_range 0 9999)
           (list_size (int_range 1 3) (tup2 (int_range 1 8) (int_range 0 600)))
           (list_size (int_bound 2) (tup2 (int_range 0 2) (int_range 0 900))))
       (fun (seed, crashes, recover_picks) ->
         (* De-dup victims: one crash per processor keeps the plan within
            the at-most-two-roles accounting. *)
         let crashes =
           List.sort_uniq (fun (a, _) (b, _) -> compare a b) crashes
         in
         let victims = List.map fst crashes in
         let recovers =
           List.filter_map
             (fun (i, t) -> Option.map (fun p -> (p, t))
                (List.nth_opt victims (i mod List.length victims)))
             recover_picks
         in
         let fault_str =
           String.concat "/"
             (List.map (fun (p, t) -> Printf.sprintf "crash:%d@%d" p t) crashes
             @ List.map
                 (fun (p, t) -> Printf.sprintf "recover:%d@%d" p t)
                 recovers)
         in
         let f = F.create ~seed ~faults:(plan fault_str) ~n:8 () in
         let live =
           List.filter
             (fun o -> not (List.mem o victims))
             (List.init 8 (fun i -> i + 1))
         in
         List.for_all2
           (fun origin expected ->
             match F.inc_result f ~origin with
             | Counter.Counter_intf.Completed v -> v = expected
             | Stalled _ -> false)
           live
           (List.init (List.length live) Fun.id)))

let () =
  Alcotest.run "retire-ft"
    [
      ( "golden",
        [
          Alcotest.test_case "bit-identical to retire-tree" `Quick
            test_golden_matches_retire_counter;
          Alcotest.test_case "explicit Fault.none also golden" `Quick
            test_fault_none_explicit_plan_also_golden;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "root worker crash" `Quick
            test_survives_root_worker_crash;
          Alcotest.test_case "mid-run crashes" `Quick
            test_survives_midrun_crashes;
          Alcotest.test_case "crashed origin stalls" `Quick
            test_crashed_origin_stalls_with_reason;
          Alcotest.test_case "pool exhaustion stalls" `Quick
            test_overflow_pool_exhaustion_stalls;
          prop_live_origins_get_permutation;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "rejoin pool, not stale role" `Quick
            test_recover_rejoins_pool_not_role;
          Alcotest.test_case "recovered rehired first" `Quick
            test_recovered_processor_is_rehired_first;
        ] );
      ( "controls",
        [
          Alcotest.test_case "no-handoff variant duplicates" `Quick
            test_broken_variant_loses_values;
          Alcotest.test_case "emergency nodes reported" `Quick
            test_emergency_nodes_reported;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay identical under crash plan" `Quick
            test_determinism_under_crash_plan;
          Alcotest.test_case "clone equivalent under faults" `Quick
            test_clone_equivalent_under_faults;
        ] );
    ]
