(* Tests for the durable WAL-backed counter (Core.Durable_counter):

   - fault-free runs hand out sequential values, persist everything
     (manifest, rolled chunks, snapshots, GC), and agree with the
     offline Wal.audit oracle; same seed => same checksum;
   - Wal codecs round-trip and replay rejects gaps;
   - crash/recover plans lose zero completed increments: the revived
     writer replays its exact pre-crash count (no amnesia), every
     completed value is distinct and below the durable count, and the
     oswald spec monitor stays quiet;
   - lossy-network plans exercise idempotent replay: origin retries are
     re-acked from the dedup table, never applied twice;
   - without CAS a stale overwrite slips in and the monitor catches it
     (the store-level shadow of the model-check counterexample);
   - clones diverge independently, monitors unshared. *)

let check = Alcotest.check

module D = Core.Durable_counter
module W = Core.Wal
module S = Sim.Store

let plan s =
  match Sim.Fault.of_string s with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad plan %S: %s" s e

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

(* Drive [ops] increments round-robin over all origins, collecting
   completed values and stall reasons. *)
let drive t ~n ~ops =
  let completed = ref [] and stalled = ref [] in
  for i = 0 to ops - 1 do
    let origin = 1 + (i mod n) in
    match D.inc_result t ~origin with
    | Counter.Counter_intf.Completed v -> completed := v :: !completed
    | Counter.Counter_intf.Stalled reason -> stalled := reason :: !stalled
  done;
  (List.rev !completed, List.rev !stalled)

let audit_count t =
  match W.audit (D.store t) with
  | Ok (count, _) -> count
  | Error e -> Alcotest.failf "audit failed: %s" e

(* ------------------------------------------------------------------ *)
(* fault-free                                                          *)

let test_sequential_values_and_durable_state () =
  let n = 4 in
  let ops = 40 in
  (* chunk_records 4 / snap_every 8 force rolls, snapshots and GC well
     inside 40 ops. *)
  let t = D.create_raw ~seed:42 ~chunk_records:4 ~snap_every:8 ~n () in
  let completed, stalled = drive t ~n ~ops in
  check Alcotest.(list string) "no stalls" [] stalled;
  check Alcotest.(list int) "sequential values"
    (List.init ops (fun i -> i))
    completed;
  check Alcotest.int "durable value" ops (D.value t);
  check Alcotest.int "live count agrees" ops (D.live_count t);
  check Alcotest.int "audit agrees" ops (audit_count t);
  check Alcotest.(option string) "no spec violation" None (D.spec_violation t);
  check Alcotest.int "no recoveries" 0 (D.replays t);
  let store = D.store t in
  let manifest =
    match S.find store W.manifest_key with
    | None -> Alcotest.fail "manifest must exist"
    | Some enc -> (
        match W.decode_manifest enc with
        | Error e -> Alcotest.failf "manifest corrupt: %s" e
        | Ok m -> m)
  in
  Alcotest.(check bool) "chunks rolled" true (manifest.W.active > 0);
  Alcotest.(check bool) "snapshot taken" true (manifest.W.snap > 0);
  Alcotest.(check bool) "GC advanced low" true (manifest.W.low > 0);
  (* GC really deleted the covered chunks: only indices >= low remain. *)
  List.iter
    (fun (k, _) ->
      match W.chunk_index_of_key k with
      | None -> ()
      | Some idx ->
          Alcotest.(check bool)
            (Printf.sprintf "%s survived GC (low=%d)" k manifest.W.low)
            true (idx >= manifest.W.low))
    (S.bindings store)

let test_same_seed_same_checksum () =
  let run () =
    let t = D.create ~seed:7 ~n:3 () in
    let completed, _ = drive t ~n:3 ~ops:12 in
    (completed, Sim.Metrics.checksum (D.metrics t))
  in
  let a = run () and b = run () in
  check Alcotest.(pair (list int) int) "bit-identical" a b

(* ------------------------------------------------------------------ *)
(* Wal codecs and replay                                               *)

let test_codecs_roundtrip () =
  let c =
    {
      W.base = 8;
      recs =
        [
          { W.lsn = 8; origin = 2; op = 3 };
          { W.lsn = 9; origin = 1; op = 5 };
        ];
    }
  in
  (match W.decode_chunk (W.encode_chunk c) with
  | Ok c' -> Alcotest.(check bool) "chunk" true (c = c')
  | Error e -> Alcotest.failf "chunk: %s" e);
  let m = { W.epoch = 3; snap = 16; low = 2; active = 5 } in
  (match W.decode_manifest (W.encode_manifest m) with
  | Ok m' -> Alcotest.(check bool) "manifest" true (m = m')
  | Error e -> Alcotest.failf "manifest: %s" e);
  let s = { W.covered = 16; table = [ (1, (4, 12)); (2, (6, 15)) ] } in
  match W.decode_snapshot (W.encode_snapshot s) with
  | Ok s' -> Alcotest.(check bool) "snapshot" true (s = s')
  | Error e -> Alcotest.failf "snapshot: %s" e

let test_replay_rejects_gap () =
  let m = { W.epoch = 1; snap = 0; low = 0; active = 0 } in
  let c =
    { W.base = 0; recs = [ { W.lsn = 0; origin = 1; op = 1 };
                           { W.lsn = 2; origin = 1; op = 2 } ] }
  in
  match W.replay m None [ c ] with
  | Error e -> Alcotest.(check bool) "gap named" true (contains ~sub:"gap" e)
  | Ok _ -> Alcotest.fail "gapped chunk must not replay"

(* ------------------------------------------------------------------ *)
(* crash/recover: no amnesia                                           *)

let zero_loss_invariants t ~completed =
  (* Every completed (acked) increment must survive in durable state:
     distinct values, all below the durable count, and the offline
     audit must agree with the live writer. *)
  let sorted = List.sort_uniq Int.compare completed in
  check Alcotest.int "completed values distinct" (List.length completed)
    (List.length sorted);
  let durable = D.value t in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "acked value %d below durable count %d" v durable)
        true (v < durable))
    completed;
  check Alcotest.int "audit agrees with durable value" durable (audit_count t);
  check Alcotest.(option string) "no spec violation" None (D.spec_violation t)

let test_writer_crash_recover_no_loss () =
  let n = 4 in
  let t =
    D.create_raw ~seed:42 ~chunk_records:4 ~snap_every:8
      ~faults:(plan "crash:1@30/recover:1@200") ~n ()
  in
  let completed, stalled = drive t ~n ~ops:32 in
  zero_loss_invariants t ~completed;
  check Alcotest.int "writer recovered and replayed" 1 (D.replays t);
  Alcotest.(check bool) "crash bit mid-run: some op saw it" true
    (List.length stalled > 0 || List.length completed = 32);
  (* Post-recovery the counter must keep handing out fresh values. *)
  let more, _ = drive t ~n ~ops:4 in
  Alcotest.(check bool) "alive after recovery" true (List.length more > 0);
  zero_loss_invariants t ~completed:(completed @ more)

let test_crash_before_first_snapshot () =
  (* Recovery purely from WAL chunks, no snapshot yet. *)
  let n = 2 in
  let t =
    D.create_raw ~seed:11 ~chunk_records:4 ~snap_every:1000
      ~faults:(plan "crash:1@20/recover:1@150") ~n ()
  in
  let completed, _ = drive t ~n ~ops:16 in
  zero_loss_invariants t ~completed;
  check Alcotest.int "recovered" 1 (D.replays t)

let test_double_crash_recover () =
  let n = 3 in
  let t =
    D.create_raw ~seed:5 ~chunk_records:4 ~snap_every:8
      ~faults:(plan "crash:1@25/recover:1@180/crash:1@400/recover:1@600") ~n ()
  in
  let completed, _ = drive t ~n ~ops:48 in
  zero_loss_invariants t ~completed;
  check Alcotest.int "two recoveries" 2 (D.replays t)

let test_non_writer_crash_is_amnesia_free_anyway () =
  (* Crashing an origin only stalls that origin's ops; the counter and
     the durable state are untouched. *)
  let n = 4 in
  let t =
    D.create_raw ~seed:9 ~faults:(plan "crash:3@10") ~n ()
  in
  let completed, stalled = drive t ~n ~ops:24 in
  zero_loss_invariants t ~completed;
  check Alcotest.int "no writer recovery" 0 (D.replays t);
  List.iter
    (fun r ->
      Alcotest.(check bool) (Printf.sprintf "stall excused: %s" r) true
        (contains ~sub:"crashed" r || contains ~sub:"gave up" r))
    stalled

(* ------------------------------------------------------------------ *)
(* lossy network: idempotent replay                                    *)

let test_message_drops_never_double_apply () =
  let n = 4 in
  List.iter
    (fun seed ->
      let t =
        D.create_raw ~seed ~chunk_records:4 ~snap_every:8
          ~faults:(plan "drop:0.15") ~n ()
      in
      let completed, _ = drive t ~n ~ops:24 in
      zero_loss_invariants t ~completed)
    [ 1; 2; 3; 4; 5 ]

let test_store_fault_plans_survive () =
  let n = 3 in
  List.iter
    (fun (seed, p) ->
      let t =
        D.create_raw ~seed ~chunk_records:4 ~snap_every:8 ~faults:(plan p) ~n ()
      in
      let completed, _ = drive t ~n ~ops:18 in
      zero_loss_invariants t ~completed)
    [
      (1, "sdrop:0.2");
      (2, "sdup:0.3");
      (3, "sslow:0.3:5");
      (4, "sout:10,40");
      (5, "sdrop:0.15/sdup:0.15/sslow:0.2:3/sout:30,60");
      (6, "crash:1@30/recover:1@260/sdrop:0.1/sdup:0.1");
    ]

(* ------------------------------------------------------------------ *)
(* CAS is load-bearing                                                 *)

let test_no_cas_stale_overwrite_slips_and_monitor_catches () =
  (* Store-level shadow of the model-check counterexample: replay the
     effect of a delayed duplicate of a stale append. With CAS the
     stale write conflicts; with blind puts it clobbers the newer
     record and the spec monitor flags the non-append rewrite. *)
  let run_with ~cas =
    let t = D.create_raw ~seed:3 ~cas ~chunk_records:64 ~snap_every:1000 ~n:2 () in
    let _ = drive t ~n:2 ~ops:3 in
    let store = D.store t in
    let key = W.chunk_key 0 in
    let stale =
      W.encode_chunk { W.base = 0; recs = [ { W.lsn = 0; origin = 1; op = 1 } ] }
    in
    let resp =
      if cas then
        S.apply store
          (S.Cas { key; expect = Some stale; value = stale })
      else S.apply store (S.Put { key; value = stale })
    in
    (resp, D.spec_violation t)
  in
  (match run_with ~cas:true with
  | S.Conflict (Some _), None -> ()
  | _ -> Alcotest.fail "CAS must reject the stale write, monitor quiet");
  match run_with ~cas:false with
  | S.Written, Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "flagged as lsn violation: %s" v)
        true
        (contains ~sub:"lsn-consistency" v)
  | S.Written, None -> Alcotest.fail "monitor must flag the lost update"
  | _ -> Alcotest.fail "blind put should apply"

let test_spec_violation_stalls_next_op () =
  let t = D.create_raw ~seed:3 ~cas:false ~chunk_records:64 ~n:2 () in
  let _ = drive t ~n:2 ~ops:2 in
  let stale =
    W.encode_chunk { W.base = 0; recs = [ { W.lsn = 0; origin = 1; op = 1 } ] }
  in
  ignore (S.apply (D.store t) (S.Put { key = W.chunk_key 0; value = stale }));
  match D.inc_result t ~origin:1 with
  | Counter.Counter_intf.Stalled reason ->
      Alcotest.(check bool)
        (Printf.sprintf "spec-prefixed: %s" reason)
        true
        (contains ~sub:"spec: lsn-consistency" reason)
  | Counter.Counter_intf.Completed _ ->
      Alcotest.fail "op after a spec violation must stall"

(* ------------------------------------------------------------------ *)
(* clones                                                              *)

let test_clone_diverges_independently () =
  let n = 3 in
  let t = D.create_raw ~seed:21 ~chunk_records:4 ~snap_every:8 ~n () in
  let _ = drive t ~n ~ops:9 in
  let c = D.clone t in
  let a, _ = drive t ~n ~ops:3 in
  let b, _ = drive c ~n ~ops:3 in
  check Alcotest.(list int) "same continuation" a b;
  check Alcotest.int "original durable" 12 (D.value t);
  check Alcotest.int "clone durable" 12 (D.value c);
  (* Monitors are unshared: corrupting the clone's store must not
     pollute the original. *)
  ignore
    (S.apply (D.store c)
       (S.Put { key = W.manifest_key; value = "epoch=0;snap=0;low=0;active=0" }));
  Alcotest.(check bool) "clone flagged" true (D.spec_violation c <> None);
  check Alcotest.(option string) "original quiet" None (D.spec_violation t)

let () =
  Alcotest.run "durable"
    [
      ( "fault-free",
        [
          Alcotest.test_case "sequential values, durable state" `Quick
            test_sequential_values_and_durable_state;
          Alcotest.test_case "same seed same checksum" `Quick
            test_same_seed_same_checksum;
        ] );
      ( "wal",
        [
          Alcotest.test_case "codecs round-trip" `Quick test_codecs_roundtrip;
          Alcotest.test_case "replay rejects gaps" `Quick test_replay_rejects_gap;
        ] );
      ( "crash-recover",
        [
          Alcotest.test_case "writer crash loses nothing" `Quick
            test_writer_crash_recover_no_loss;
          Alcotest.test_case "recovery without snapshot" `Quick
            test_crash_before_first_snapshot;
          Alcotest.test_case "double crash/recover" `Quick
            test_double_crash_recover;
          Alcotest.test_case "origin crash only stalls origin" `Quick
            test_non_writer_crash_is_amnesia_free_anyway;
        ] );
      ( "lossy",
        [
          Alcotest.test_case "drops never double-apply" `Quick
            test_message_drops_never_double_apply;
          Alcotest.test_case "store fault plans survive" `Quick
            test_store_fault_plans_survive;
        ] );
      ( "cas",
        [
          Alcotest.test_case "no-cas lost update caught" `Quick
            test_no_cas_stale_overwrite_slips_and_monitor_catches;
          Alcotest.test_case "violation stalls next op" `Quick
            test_spec_violation_stalls_next_op;
        ] );
      ( "clone",
        [
          Alcotest.test_case "diverges independently" `Quick
            test_clone_diverges_independently;
        ] );
    ]
