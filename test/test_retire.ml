(* Tests for the paper's retirement-tree counter: protocol correctness,
   the Section 4 lemmas in their asymptotic form, and protocol
   invariants. *)

let check = Alcotest.check

module R = Core.Retire_counter

let run_each_once ?(seed = 42) k =
  let n = Core.Params.n_of_k k in
  let c = R.create ~seed ~n () in
  let values = List.init n (fun i -> R.inc c ~origin:(i + 1)) in
  (c, values)

let test_values_sequential () =
  List.iter
    (fun k ->
      let n = Core.Params.n_of_k k in
      let _, values = run_each_once k in
      Alcotest.(check (list int))
        (Printf.sprintf "k=%d values" k)
        (List.init n Fun.id) values)
    [ 1; 2; 3 ]

let test_value_matches_ops () =
  let c, _ = run_each_once 2 in
  check Alcotest.int "counter value" 8 (R.value c)

let test_shuffled_origins_still_correct () =
  let n = 81 in
  let c = R.create ~seed:1 ~n () in
  let rng = Sim.Rng.create ~seed:5 in
  let order = Sim.Rng.permutation rng n in
  Array.iteri
    (fun i origin -> check Alcotest.int "value" i (R.inc c ~origin:(origin + 1)))
    order

let test_repeated_origin () =
  (* The paper's lower-bound sequence has each processor inc once, but the
     counter itself must serve any sequential request pattern. *)
  let c = R.create ~n:8 () in
  for i = 0 to 19 do
    check Alcotest.int "same origin repeats" i (R.inc c ~origin:3)
  done

let test_bottleneck_o_k () =
  (* The Bottleneck Theorem: every processor's load is O(k). Empirically
     the constant is ~15 (EXPERIMENTS.md E4); assert a generous 25k + 10
     so regressions that break the asymptotics (e.g. disabling
     retirement) fail loudly. *)
  List.iter
    (fun k ->
      let c, _ = run_each_once k in
      let _, bottleneck = Sim.Metrics.bottleneck (R.metrics c) in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d bottleneck %d <= 25k+10" k bottleneck)
        true
        (bottleneck <= (25 * k) + 10))
    [ 2; 3; 4 ]

let test_bottleneck_beats_static_tree () =
  let k = 3 in
  let n = Core.Params.n_of_k k in
  let retire, _ = run_each_once k in
  let static =
    R.create_with { (R.paper_config ~k) with retire_threshold = max_int }
  in
  for i = 1 to n do
    ignore (R.inc static ~origin:i)
  done;
  let _, b_retire = Sim.Metrics.bottleneck (R.metrics retire) in
  let _, b_static = Sim.Metrics.bottleneck (R.metrics static) in
  Alcotest.(check bool)
    (Printf.sprintf "retired %d < static %d" b_retire b_static)
    true
    (b_retire * 3 < b_static)

let test_hotspot_lemma_holds () =
  let c, _ = run_each_once 3 in
  Alcotest.(check bool) "hot spot lemma" true (Counter.Hotspot.holds (R.traces c))

let test_grow_old_lemma_holds () =
  (* Direct per-operation regression for the Grow Old Lemma: no
     non-retiring inner node ages by more than the constant 4 during a
     single inc, at the paper's design point and one size up. *)
  List.iter
    (fun k ->
      let r = Core.Grow_old.check ~k () in
      Alcotest.(check bool)
        (Fmt.str "k=%d: %a" k Core.Grow_old.pp_report r)
        true
        (Core.Grow_old.holds r);
      Alcotest.(check (list unit)) "no violations" []
        (List.map (fun _ -> ()) r.Core.Grow_old.violations);
      Alcotest.(check bool) "delta within bound" true
        (r.Core.Grow_old.max_delta <= Core.Grow_old.bound))
    [ 2; 3 ]

let test_grow_old_bound_tight () =
  (* The constant is not slack: at k = 3 some node actually ages by the
     full 4 units (request down + reply up + an announcement per side). *)
  let r = Core.Grow_old.check ~k:3 () in
  Alcotest.(check int) "bound reached" Core.Grow_old.bound
    r.Core.Grow_old.max_delta;
  Alcotest.(check int) "bound is the documented constant" 4
    Core.Grow_old.bound

let plan s =
  match Sim.Fault.of_string s with Ok f -> f | Error e -> Alcotest.fail e

let test_grow_old_ft_fault_free_matches () =
  (* Without faults the failure-aware checker is the plain checker: one
     attempt per op, no emergency activity, identical age deltas. *)
  List.iter
    (fun k ->
      let r = Core.Grow_old.check ~k () in
      let rf = Core.Grow_old.check_ft ~k () in
      Alcotest.(check bool) "holds" true (Core.Grow_old.holds_ft rf);
      Alcotest.(check int) "same max delta" r.Core.Grow_old.max_delta
        rf.Core.Grow_old.base.Core.Grow_old.max_delta;
      Alcotest.(check int) "single attempts" 1 rf.Core.Grow_old.max_attempts;
      Alcotest.(check int) "no emergencies" 0 rf.Core.Grow_old.emergency_ops)
    [ 2; 3 ]

let test_grow_old_ft_under_crashes () =
  (* The lemma's constants survive emergency retirement: per attempt, a
     non-retiring node still ages at most 4 even while the audit deposes
     crashed workers around it. Each plan kills one worker on a request
     path, so at least one op must actually go through the emergency
     machinery (non-vacuous). *)
  List.iter
    (fun (k, p) ->
      let rf = Core.Grow_old.check_ft ~k ~faults:(plan p) () in
      Alcotest.(check bool)
        (Fmt.str "k=%d %s: %a" k p Core.Grow_old.pp_report
           rf.Core.Grow_old.base)
        true
        (Core.Grow_old.holds_ft rf);
      Alcotest.(check bool)
        (Fmt.str "k=%d %s: emergency exercised" k p)
        true
        (rf.Core.Grow_old.emergency_ops > 0);
      Alcotest.(check bool)
        (Fmt.str "k=%d %s: retried at least once" k p)
        true
        (rf.Core.Grow_old.max_attempts >= 2))
    (* Victims must hold a role on a *future* request path when they die:
       roles migrate off their initial processors every few ops, so the
       mid-run plans crash the processor currently walking the busy l1
       node rather than an original (long-since-spare) worker. *)
    [ (2, "crash:1@0"); (2, "crash:3@40"); (3, "crash:1@0"); (3, "crash:4@200") ]

let test_retirement_lemma_crash_triggered () =
  (* Retirement Lemma under faults: no node retires twice within one
     attempt even when one of the retirements was crash-triggered rather
     than age-triggered. *)
  let rf = Core.Grow_old.check_ft ~k:3 ~faults:(plan "crash:1@0") () in
  Alcotest.(check int) "no double retirement per attempt" 0
    rf.Core.Grow_old.retire_violations;
  Alcotest.(check bool) "some node did retire during an op" true
    (rf.Core.Grow_old.max_retire_delta >= 1);
  Alcotest.(check bool) "emergency retirements happened" true
    (rf.Core.Grow_old.emergency_ops > 0)

let test_load_distribution_flat () =
  (* The whole point of the construction: no processor stands out. Every
     processor pays its leaf role (>= 2 messages: the inc request and the
     value reply) and at most a bounded number of O(k) worker stints, so
     the maximum load is within a small factor of the median — unlike
     central/static counters where the maximum is Theta(n) above it. *)
  let c, _ = run_each_once 3 in
  let m = R.metrics c in
  let loads = Array.init 81 (fun i -> Sim.Metrics.load m (i + 1)) in
  Array.sort compare loads;
  let median = loads.(40) and lowest = loads.(0) and highest = loads.(80) in
  Alcotest.(check bool) "every processor pays its leaf role" true (lowest >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "max %d <= 6 * median %d" highest median)
    true
    (highest <= 6 * median)

let test_retirements_by_level_shape () =
  (* Number of Retirements Lemma (asymptotic form): per-node retirements
     fall geometrically with the level — a level-i node retires
     Theta(k^(k-i)) times. Check monotone decrease of the per-node
     maximum down the levels, and that the root retires the most. *)
  let c, _ = run_each_once 4 in
  let per_level =
    List.init 5 (fun level -> R.max_retirements_at_level c level)
  in
  (match per_level with
  | root :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "root retires most" true (root >= r))
        rest
  | [] -> Alcotest.fail "no levels");
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "levels decrease: %d >= %d" a b)
          true (a >= b);
        decreasing rest
    | _ -> ()
  in
  decreasing per_level

let test_retirement_constants_documented () =
  (* The measured per-node retirement counts stay within a small constant
     of the paper's replacement supply k^(k-i) (EXPERIMENTS.md discusses
     the constant; here we pin the factor 3 so drift is caught). *)
  let c, _ = run_each_once 4 in
  let t = R.tree c in
  for level = 1 to Core.Tree.depth t do
    let cap = Core.Ids.capacity t ~level in
    let worst = R.max_retirements_at_level c level in
    Alcotest.(check bool)
      (Printf.sprintf "level %d: %d <= 3 * %d" level worst cap)
      true
      (worst <= 3 * cap)
  done

let test_no_retirement_before_any_op () =
  let c = R.create ~n:81 () in
  check Alcotest.int "no retirements" 0 (R.total_retirements c);
  check Alcotest.int "no messages" 0
    (Sim.Metrics.total_messages (R.metrics c))

let test_believed_ids_consistent_at_quiescence () =
  let c, _ = run_each_once 3 in
  Alcotest.(check bool) "believed = actual" true (R.believed_consistent c)

let test_workers_stay_in_interval_or_overflow () =
  (* Every inner node's current worker is either inside its reserved
     interval or an overflow hire (> n). *)
  let c, _ = run_each_once 4 in
  let t = R.tree c in
  let n = Core.Tree.n t in
  for flat = 1 to Core.Tree.inner_count t - 1 do
    let w = R.node_worker c flat in
    let lo, hi = Core.Ids.interval_of_flat t flat in
    Alcotest.(check bool)
      (Printf.sprintf "node %d worker %d in [%d,%d] or > n" flat w lo hi)
      true
      ((w >= lo && w <= hi) || w > n)
  done

let test_root_worker_walks_up () =
  let c, _ = run_each_once 3 in
  let root_worker = R.node_worker c Core.Tree.root in
  let retirements = R.retirements_of_node c Core.Tree.root in
  check Alcotest.int "root worker = 1 + retirements"
    (1 + retirements) root_worker

let test_trace_has_value_reply () =
  let c = R.create ~n:8 () in
  ignore (R.inc c ~origin:5);
  match R.traces c with
  | [ trace ] ->
      (* First and last events: the leaf's request leaves processor 5 and
         the value arrives back at processor 5. *)
      let events = Sim.Trace.events trace in
      (match events with
      | first :: _ -> check Alcotest.int "starts at origin" 5 first.Sim.Trace.src
      | [] -> Alcotest.fail "no events");
      let last = List.nth events (List.length events - 1) in
      Alcotest.(check bool)
        "value reply reaches origin eventually" true
        (List.exists
           (fun (e : Sim.Trace.event) -> e.dst = 5 && e.tag = "val")
           events);
      ignore last
  | l -> Alcotest.failf "expected 1 trace, got %d" (List.length l)

let test_inc_cost_o_k () =
  (* Grow Old Lemma aggregate: an inc's own process is O(k) messages when
     no retirement cascades, and retirement costs amortise. The *first*
     operation has no retirements: exactly depth+1 hops + 1 value
     message. *)
  List.iter
    (fun k ->
      let n = Core.Params.n_of_k k in
      let c = R.create ~n () in
      ignore (R.inc c ~origin:n);
      match R.traces c with
      | [ trace ] ->
          check Alcotest.int
            (Printf.sprintf "k=%d first op costs depth+2" k)
            (k + 2)
            (Sim.Trace.message_count trace)
      | _ -> Alcotest.fail "expected 1 trace")
    [ 2; 3; 4 ]

let test_message_bits_logarithmic () =
  (* "We are able to keep the length of messages as short as O(log n)
     bits": the largest message must stay within a few identifiers. *)
  List.iter
    (fun k ->
      let n = Core.Params.n_of_k k in
      let c = R.create ~n () in
      for i = 1 to n do
        ignore (R.inc c ~origin:i)
      done;
      let log2n = log (float_of_int n) /. log 2. in
      let max_bits = float_of_int (R.max_message_bits c) in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: %.0f bits <= 5*log2(n)+8" k max_bits)
        true
        (max_bits <= (5. *. log2n) +. 8.))
    [ 2; 3; 4 ]

let test_correct_under_async_delays () =
  (* The counter's results are delay-independent: exponential and
     heavy-jitter delivery reorder messages (retirement announcements vs
     in-flight requests) yet every value must still be exact. *)
  List.iter
    (fun delay ->
      let c = R.create ~delay ~n:81 () in
      for i = 0 to 80 do
        check Alcotest.int
          (Format.asprintf "value under %a" Sim.Delay.pp delay)
          i
          (R.inc c ~origin:(i + 1))
      done)
    [ Sim.Delay.Exponential 1.0; Sim.Delay.Adversarial_jitter 0.5 ]

let test_load_similar_across_delay_models () =
  (* Message counts barely move with the delay model (only stale-forward
     handshakes differ): the bound is about counting, not timing. *)
  let bottleneck delay =
    let c = R.create ~delay ~n:81 () in
    for i = 1 to 81 do
      ignore (R.inc c ~origin:i)
    done;
    snd (Sim.Metrics.bottleneck (R.metrics c))
  in
  let b_const = bottleneck (Sim.Delay.Constant 1.0) in
  let b_exp = bottleneck (Sim.Delay.Exponential 1.0) in
  Alcotest.(check bool)
    (Printf.sprintf "within 2x: %d vs %d" b_const b_exp)
    true
    (b_exp <= 2 * b_const && b_const <= 2 * b_exp)

let test_batch_values_contiguous () =
  let n = 81 in
  let c = R.create ~n () in
  let results = R.run_batch c ~origins:(List.init n (fun i -> i + 1)) in
  check Alcotest.int "all completed" n (List.length results);
  let values = List.sort compare (List.map snd results) in
  Alcotest.(check (list int)) "contiguous block" (List.init n Fun.id) values;
  (* Every origin got exactly one value. *)
  let origins = List.sort compare (List.map fst results) in
  Alcotest.(check (list int)) "each origin once" (List.init n (fun i -> i + 1)) origins

let test_batch_then_sequential () =
  let c = R.create ~n:81 () in
  ignore (R.run_batch c ~origins:[ 1; 2; 3 ]);
  (* The counter keeps working sequentially afterwards. *)
  check Alcotest.int "next value" 3 (R.inc c ~origin:50);
  check Alcotest.int "value" 4 (R.value c)

let test_batch_empty_rejected () =
  let c = R.create ~n:8 () in
  match R.run_batch c ~origins:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_clone_independence () =
  let c = R.create ~n:81 () in
  for i = 1 to 40 do
    ignore (R.inc c ~origin:i)
  done;
  let clone = R.clone c in
  (* Advancing the clone must not affect the original. *)
  check Alcotest.int "clone continues" 40 (R.inc clone ~origin:41);
  check Alcotest.int "clone again" 41 (R.inc clone ~origin:42);
  check Alcotest.int "original unaffected" 40 (R.inc c ~origin:41);
  check Alcotest.int "original value counts only its own ops" 41 (R.value c);
  check Alcotest.int "clone value counts its own ops" 42 (R.value clone)

let test_clone_equivalent_future () =
  (* Determinism: original and clone perform identical future runs. *)
  let c = R.create ~n:81 () in
  for i = 1 to 30 do
    ignore (R.inc c ~origin:i)
  done;
  let clone = R.clone c in
  for i = 31 to 81 do
    let a = R.inc c ~origin:i and b = R.inc clone ~origin:i in
    check Alcotest.int "same values" a b
  done;
  let ma = R.metrics c and mb = R.metrics clone in
  check Alcotest.int "same total messages"
    (Sim.Metrics.total_messages ma)
    (Sim.Metrics.total_messages mb);
  check Alcotest.int "same bottleneck"
    (snd (Sim.Metrics.bottleneck ma))
    (snd (Sim.Metrics.bottleneck mb))

let test_threshold_ablation_reduces_retirements () =
  let k = 3 in
  let n = Core.Params.n_of_k k in
  let run threshold =
    let c =
      R.create_with { (R.paper_config ~k) with retire_threshold = threshold }
    in
    for i = 1 to n do
      ignore (R.inc c ~origin:i)
    done;
    R.total_retirements c
  in
  let low = run (2 * k) and high = run (8 * k) in
  Alcotest.(check bool)
    (Printf.sprintf "higher threshold retires less: %d > %d" low high)
    true (low > high)

let test_generalised_arity_correct () =
  (* Arity ablation shapes still count correctly. *)
  List.iter
    (fun (arity, depth) ->
      let cfg =
        {
          R.arity;
          depth;
          retire_threshold = max (2 * arity) (arity + 2);
        }
      in
      let n = R.config_n cfg in
      let c = R.create_with cfg in
      for i = 0 to n - 1 do
        check Alcotest.int
          (Printf.sprintf "a=%d d=%d op %d" arity depth i)
          i
          (R.inc c ~origin:(i + 1))
      done)
    [ (2, 4); (4, 2); (8, 1); (3, 0) ]

let test_create_rejects_non_grid_n () =
  match R.create ~n:100 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of n=100"

let test_supported_n () =
  check Alcotest.int "rounds up" 1024 (R.supported_n 100);
  check Alcotest.int "exact point" 81 (R.supported_n 81)

let test_threshold_guard () =
  match
    R.create_with { R.arity = 3; depth = 3; retire_threshold = 2 }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected threshold guard"

let test_origin_range_checked () =
  let c = R.create ~n:8 () in
  Alcotest.check_raises "origin 0"
    (Invalid_argument "Retire_counter: origin out of range") (fun () ->
      ignore (R.inc c ~origin:0));
  Alcotest.check_raises "origin n+1"
    (Invalid_argument "Retire_counter: origin out of range") (fun () ->
      ignore (R.inc c ~origin:9))

let prop_generalised_shapes_correct =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"random (arity, depth, threshold) shapes count correctly"
       ~count:25
       QCheck2.Gen.(tup3 (int_range 2 5) (int_range 0 3) (int_range 0 10))
       (fun (arity, depth, extra) ->
         let cfg =
           {
             R.arity;
             depth;
             retire_threshold = max (2 * arity) (arity + 2) + extra;
           }
         in
         let n = R.config_n cfg in
         n <= 1024
         &&
         let c = R.create_with cfg in
         let ok = ref true in
         for i = 0 to min n 200 - 1 do
           if R.inc c ~origin:((i mod n) + 1) <> i then ok := false
         done;
         !ok && R.believed_consistent c))

let prop_correct_on_random_prefix =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random origin sequences count correctly"
       ~count:25
       QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 81))
       (fun origins ->
         let c = R.create ~n:81 () in
         List.for_all2
           (fun origin expected -> R.inc c ~origin = expected)
           origins
           (List.init (List.length origins) Fun.id)))

let prop_hotspot_on_random_schedules =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"hot spot lemma on random schedules" ~count:15
       QCheck2.Gen.(list_size (int_range 2 40) (int_range 1 81))
       (fun origins ->
         let c = R.create ~n:81 () in
         List.iter (fun origin -> ignore (R.inc c ~origin)) origins;
         Counter.Hotspot.holds (R.traces c)))

let () =
  Alcotest.run "retire-counter"
    [
      ( "correctness",
        [
          Alcotest.test_case "each-once values" `Quick test_values_sequential;
          Alcotest.test_case "value matches ops" `Quick test_value_matches_ops;
          Alcotest.test_case "shuffled origins" `Quick test_shuffled_origins_still_correct;
          Alcotest.test_case "repeated origin" `Quick test_repeated_origin;
          Alcotest.test_case "generalised arity" `Quick test_generalised_arity_correct;
          prop_correct_on_random_prefix;
          prop_generalised_shapes_correct;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "bottleneck O(k)" `Quick test_bottleneck_o_k;
          Alcotest.test_case "beats static tree" `Quick test_bottleneck_beats_static_tree;
          Alcotest.test_case "hot spot lemma" `Quick test_hotspot_lemma_holds;
          Alcotest.test_case "grow old lemma" `Quick test_grow_old_lemma_holds;
          Alcotest.test_case "grow old ft fault-free" `Quick
            test_grow_old_ft_fault_free_matches;
          Alcotest.test_case "grow old under crashes" `Quick
            test_grow_old_ft_under_crashes;
          Alcotest.test_case "retirement lemma crash-triggered" `Quick
            test_retirement_lemma_crash_triggered;
          Alcotest.test_case "grow old bound tight" `Quick
            test_grow_old_bound_tight;
          Alcotest.test_case "load distribution flat" `Quick test_load_distribution_flat;
          Alcotest.test_case "retirements decrease by level" `Quick test_retirements_by_level_shape;
          Alcotest.test_case "retirement constants pinned" `Quick test_retirement_constants_documented;
          Alcotest.test_case "first op costs k+2" `Quick test_inc_cost_o_k;
          prop_hotspot_on_random_schedules;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "fresh counter is idle" `Quick test_no_retirement_before_any_op;
          Alcotest.test_case "believed ids consistent" `Quick test_believed_ids_consistent_at_quiescence;
          Alcotest.test_case "workers in interval or overflow" `Quick test_workers_stay_in_interval_or_overflow;
          Alcotest.test_case "root id walk" `Quick test_root_worker_walks_up;
          Alcotest.test_case "trace shape" `Quick test_trace_has_value_reply;
          Alcotest.test_case "threshold ablation" `Quick test_threshold_ablation_reduces_retirements;
          Alcotest.test_case "messages O(log n) bits" `Quick test_message_bits_logarithmic;
          Alcotest.test_case "correct under async delays" `Quick test_correct_under_async_delays;
          Alcotest.test_case "load stable across delay models" `Quick test_load_similar_across_delay_models;
          Alcotest.test_case "batch values contiguous" `Quick test_batch_values_contiguous;
          Alcotest.test_case "batch then sequential" `Quick test_batch_then_sequential;
          Alcotest.test_case "batch empty rejected" `Quick test_batch_empty_rejected;
        ] );
      ( "api",
        [
          Alcotest.test_case "clone independence" `Quick test_clone_independence;
          Alcotest.test_case "clone equivalent future" `Quick test_clone_equivalent_future;
          Alcotest.test_case "rejects non-grid n" `Quick test_create_rejects_non_grid_n;
          Alcotest.test_case "supported_n" `Quick test_supported_n;
          Alcotest.test_case "threshold guard" `Quick test_threshold_guard;
          Alcotest.test_case "origin range" `Quick test_origin_range_checked;
        ] );
    ]
