(* Tests for the simulator substrate: Rng, Heap, Delay, Trace, Comm_list,
   Metrics, Network. *)

let check = Alcotest.check

module Heap = Sim.Heap

(* A trivial ping protocol used by the network and DAG tests: processor p
   sends "ping" to q, q replies "pong". *)
type ping = Ping | Pong

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:123 and b = Sim.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  let draws_a = List.init 20 (fun _ -> Sim.Rng.int a 1_000_000) in
  let draws_b = List.init 20 (fun _ -> Sim.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (draws_a <> draws_b)

let test_rng_bounds () =
  let rng = Sim.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Sim.Rng.int_in rng ~lo:5 ~hi:9 in
    Alcotest.(check bool) "in inclusive range" true (v >= 5 && v <= 9)
  done

let test_rng_split_independent () =
  let parent = Sim.Rng.create ~seed:99 in
  let child = Sim.Rng.split parent in
  (* The child stream must not be a shifted copy of the parent stream. *)
  let a = List.init 10 (fun _ -> Sim.Rng.bits64 parent) in
  let b = List.init 10 (fun _ -> Sim.Rng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_copy () =
  let a = Sim.Rng.create ~seed:5 in
  ignore (Sim.Rng.int a 10);
  let b = Sim.Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int "copy tracks" (Sim.Rng.int a 999) (Sim.Rng.int b 999)
  done

let test_rng_permutation () =
  let rng = Sim.Rng.create ~seed:3 in
  let p = Sim.Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int))
    "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_float_bounds () =
  let rng = Sim.Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (v >= 0. && v < 2.5)
  done

let prop_rng_int_uniformish =
  QCheck2.Test.make ~name:"rng hits every residue eventually"
    ~count:20
    QCheck2.Gen.(int_range 2 12)
    (fun bound ->
      let rng = Sim.Rng.create ~seed:bound in
      let seen = Array.make bound false in
      for _ = 1 to 200 * bound do
        seen.(Sim.Rng.int rng bound) <- true
      done;
      Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter
    (fun (p, v) -> Heap.push h ~prio:p v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let order = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "pop order" [ "z"; "a"; "b"; "c" ] order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~prio:1.0 v) [ 1; 2; 3; 4; 5 ];
  let order = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "ties are FIFO" [ 1; 2; 3; 4; 5 ] order

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h ~prio:2. "b";
  Heap.push h ~prio:1. "a";
  (match Heap.pop h with
  | Some (p, v) ->
      check (Alcotest.float 0.0) "prio" 1. p;
      check Alcotest.string "value" "a" v
  | None -> Alcotest.fail "expected element");
  Heap.push h ~prio:0.5 "z";
  (match Heap.pop h with
  | Some (_, v) -> check Alcotest.string "later insert wins" "z" v
  | None -> Alcotest.fail "expected element");
  check Alcotest.int "size" 1 (Heap.size h)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~prio:1. 1;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_matches_sorted_model =
  QCheck2.Test.make ~name:"heap pops = stable sort by priority" ~count:200
    QCheck2.Gen.(list (pair (float_bound_inclusive 100.) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.push h ~prio:p v) items;
      let popped = Heap.to_sorted_list h in
      (* Model: stable sort on priority preserves insertion order of
         ties, like the heap's sequence numbers. *)
      let model =
        List.stable_sort
          (fun (p1, _) (p2, _) -> compare p1 p2)
          items
      in
      popped = model)

(* ------------------------------------------------------------------ *)
(* Delay *)

let test_delay_constant () =
  let rng = Sim.Rng.create ~seed:1 in
  for _ = 1 to 10 do
    check (Alcotest.float 0.0) "constant" 1.5
      (Sim.Delay.sample (Sim.Delay.Constant 1.5) rng)
  done

let test_delay_positive () =
  let rng = Sim.Rng.create ~seed:1 in
  List.iter
    (fun d ->
      for _ = 1 to 500 do
        Alcotest.(check bool) "positive" true (Sim.Delay.sample d rng > 0.)
      done)
    [
      Sim.Delay.Constant 0.;
      Sim.Delay.Uniform (0., 1.);
      Sim.Delay.Exponential 1.0;
      Sim.Delay.Adversarial_jitter 1.0;
    ]

let test_delay_uniform_range () =
  let rng = Sim.Rng.create ~seed:2 in
  for _ = 1 to 500 do
    let v = Sim.Delay.sample (Sim.Delay.Uniform (2., 5.)) rng in
    Alcotest.(check bool) "in [2,5)" true (v >= 2. && v < 5.)
  done

let test_delay_parse_roundtrip () =
  List.iter
    (fun d ->
      match Sim.Delay.of_string (Sim.Delay.to_string d) with
      | Ok d' ->
          check Alcotest.string "roundtrip" (Sim.Delay.to_string d)
            (Sim.Delay.to_string d')
      | Error e -> Alcotest.fail e)
    [
      Sim.Delay.Constant 1.;
      Sim.Delay.Uniform (0.5, 2.);
      Sim.Delay.Exponential 3.;
      Sim.Delay.Adversarial_jitter 0.1;
    ]

let test_delay_parse_errors () =
  List.iter
    (fun s ->
      match Sim.Delay.of_string s with
      | Ok _ -> Alcotest.failf "should not parse: %s" s
      | Error _ -> ())
    [ ""; "constant"; "uniform:1"; "exp:x"; "nope:1" ]

(* ------------------------------------------------------------------ *)
(* Trace / Comm_list *)

let make_trace events =
  let t = Sim.Trace.create ~op_index:0 ~origin:3 () in
  List.iteri
    (fun i (src, dst) ->
      Sim.Trace.record t
        { Sim.Trace.seq = i + 1; time = float_of_int i; src; dst; tag = "m"; parent = i })
    events;
  t

let test_trace_processors () =
  let t = make_trace [ (3, 11); (11, 17); (17, 3) ] in
  Alcotest.(check (list int)) "I_p" [ 3; 11; 17 ] (Sim.Trace.processors t);
  Alcotest.(check bool) "touches" true (Sim.Trace.touches t 11);
  Alcotest.(check bool) "not touches" false (Sim.Trace.touches t 12)

let test_trace_empty_includes_origin () =
  let t = make_trace [] in
  Alcotest.(check (list int)) "origin only" [ 3 ] (Sim.Trace.processors t);
  check Alcotest.int "no messages" 0 (Sim.Trace.message_count t)

let test_trace_intersects () =
  let a = make_trace [ (3, 11) ] in
  let b = make_trace [ (3, 17) ] in
  Alcotest.(check bool) "share origin 3" true (Sim.Trace.intersects a b);
  let c =
    let t = Sim.Trace.create ~op_index:1 ~origin:20 () in
    Sim.Trace.record t
      { Sim.Trace.seq = 1; time = 0.; src = 20; dst = 21; tag = "m"; parent = 0 };
    t
  in
  Alcotest.(check bool) "disjoint" false (Sim.Trace.intersects a c)

let test_trace_duration () =
  let t = Sim.Trace.create ~start_time:3.0 ~op_index:0 ~origin:1 () in
  check (Alcotest.float 1e-9) "empty duration" 0. (Sim.Trace.duration t);
  Sim.Trace.record t
    { Sim.Trace.seq = 1; time = 4.0; src = 1; dst = 2; tag = "m"; parent = 0 };
  Sim.Trace.record t
    { Sim.Trace.seq = 2; time = 6.5; src = 2; dst = 1; tag = "m"; parent = 1 };
  check (Alcotest.float 1e-9) "duration" 3.5 (Sim.Trace.duration t)

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let test_trace_to_dot () =
  let t = make_trace [ (3, 11); (11, 17); (17, 3) ] in
  let dot = Sim.Trace.to_dot t in
  Alcotest.(check bool) "digraph" true (contains_substring dot "digraph");
  Alcotest.(check bool) "has origin node" true
    (contains_substring dot "[label=\"3\"]");
  Alcotest.(check bool) "has arcs" true (contains_substring dot "->");
  (* The origin both starts the process and receives the final message:
     it must appear as TWO dag nodes (two label-3 declarations). *)
  let count_label3 =
    let needle = "[label=\"3\"];" in
    let nl = String.length needle in
    let rec go i acc =
      if i + nl > String.length dot then acc
      else if String.sub dot i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "origin appears twice" 2 count_label3

let test_comm_list_structure () =
  (* The paper's Fig. 1 example flattened: 3 -> 11 -> 17 -> 27, 17 -> 7,
     7 -> 3 (answer). Delivery order gives topological order. *)
  let t = make_trace [ (3, 11); (11, 17); (17, 27); (17, 7); (7, 3) ] in
  let l = Sim.Comm_list.of_trace t in
  check Alcotest.int "origin" 3 (Sim.Comm_list.origin l);
  check Alcotest.int "length = messages (no dups here)" 5
    (Sim.Comm_list.length l);
  Alcotest.(check (list int))
    "nodes" [ 3; 11; 17; 27; 7; 3 ]
    (Sim.Comm_list.nodes l)

let test_comm_list_merges_consecutive () =
  (* Two consecutive deliveries to the same processor merge into one DAG
     node in the list. *)
  let t = make_trace [ (3, 11); (5, 11); (11, 9) ] in
  let l = Sim.Comm_list.of_trace t in
  Alcotest.(check (list int)) "merged" [ 3; 11; 9 ] (Sim.Comm_list.nodes l)

let test_comm_list_empty () =
  let t = make_trace [] in
  let l = Sim.Comm_list.of_trace t in
  check Alcotest.int "length 0" 0 (Sim.Comm_list.length l);
  check Alcotest.int "label 1 = origin" 3 (Sim.Comm_list.label l 1)

let test_comm_list_label_out_of_range () =
  let l = Sim.Comm_list.of_trace (make_trace []) in
  Alcotest.check_raises "label 0" (Invalid_argument "Comm_list.label: position out of range")
    (fun () -> ignore (Sim.Comm_list.label l 0))

let test_trace_pp_lanes () =
  let t = make_trace [ (3, 11); (11, 3) ] in
  let s = Format.asprintf "%a" Sim.Trace.pp_lanes t in
  Alcotest.(check bool) "has header lanes" true
    (contains_substring s "p3" && contains_substring s "p11");
  Alcotest.(check bool) "has forward arrow" true (contains_substring s "*-");
  Alcotest.(check bool) "has backward arrow" true (contains_substring s "<-")

(* ------------------------------------------------------------------ *)
(* Dag *)

(* A trace with explicit causal structure: a chain 3->1->2 plus a fan-out
   1->4, 1->5 caused by event 1's delivery. *)
let causal_trace () =
  let t = Sim.Trace.create ~op_index:0 ~origin:3 () in
  List.iter
    (fun (seq, src, dst, parent) ->
      Sim.Trace.record t
        {
          Sim.Trace.seq;
          time = float_of_int seq;
          src;
          dst;
          tag = "m";
          parent;
        })
    [ (1, 3, 1, 0); (2, 1, 2, 1); (3, 1, 4, 1); (4, 1, 5, 1); (5, 2, 6, 2) ];
  t

let test_dag_structure () =
  let d = Sim.Dag.of_trace (causal_trace ()) in
  check Alcotest.int "events" 5 (Sim.Dag.event_count d);
  (* Chain 3->1->2->6 has length 3. *)
  check Alcotest.int "critical path" 3 (Sim.Dag.critical_path d);
  (* Depth 2 holds events 2,3,4 (to processors 2, 4, 5). *)
  check Alcotest.int "max width" 3 (Sim.Dag.max_width d);
  Alcotest.(check (array int)) "profile" [| 1; 3; 1 |] (Sim.Dag.depth_profile d);
  Alcotest.(check bool) "delivery order topological" true
    (Sim.Dag.consistent_with_delivery_order d)

let test_dag_empty () =
  let t = Sim.Trace.create ~op_index:0 ~origin:7 () in
  let d = Sim.Dag.of_trace t in
  check Alcotest.int "no events" 0 (Sim.Dag.event_count d);
  check Alcotest.int "no path" 0 (Sim.Dag.critical_path d);
  check Alcotest.int "no width" 0 (Sim.Dag.max_width d)

let test_dag_from_real_network () =
  (* Drive a real protocol: 1 pings 2 and 3; each replies. The DAG must
     be a depth-2 tree of width 2, and the dot output must hang the first
     sends off the virtual source. *)
  let net = Sim.Network.create ~n:3 () in
  Sim.Network.set_handler net (fun ~self ~src msg ->
      match msg with
      | Ping -> Sim.Network.send net ~src:self ~dst:src Pong
      | Pong -> ());
  Sim.Network.begin_op net ~origin:1;
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  Sim.Network.send net ~src:1 ~dst:3 Ping;
  ignore (Sim.Network.run_to_quiescence net);
  let d = Sim.Dag.of_trace (Sim.Network.end_op net) in
  check Alcotest.int "events" 4 (Sim.Dag.event_count d);
  check Alcotest.int "critical path" 2 (Sim.Dag.critical_path d);
  check Alcotest.int "width" 2 (Sim.Dag.max_width d);
  Alcotest.(check bool) "topological" true
    (Sim.Dag.consistent_with_delivery_order d);
  let dot = Sim.Dag.to_dot d in
  Alcotest.(check bool) "has source" true
    (contains_substring dot "doublecircle")

let test_dag_timer_causality () =
  (* A timer armed while handling a delivery passes that delivery on as
     the causal parent of anything the timer sends. *)
  let net = Sim.Network.create ~n:2 () in
  Sim.Network.set_handler net (fun ~self ~src msg ->
      match msg with
      | Ping ->
          Sim.Network.schedule_local net ~delay:1.0 (fun () ->
              Sim.Network.send net ~src:self ~dst:src Pong)
      | Pong -> ());
  Sim.Network.begin_op net ~origin:1;
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  ignore (Sim.Network.run_to_quiescence net);
  let d = Sim.Dag.of_trace (Sim.Network.end_op net) in
  (* Ping then Pong: the Pong's parent is the Ping delivery, so the chain
     has length 2 even though the Pong was sent from a timer. *)
  check Alcotest.int "critical path through timer" 2 (Sim.Dag.critical_path d)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_accounting () =
  let m = Sim.Metrics.create ~n:5 in
  Sim.Metrics.on_send m 1;
  Sim.Metrics.on_recv m 2;
  Sim.Metrics.on_send m 2;
  Sim.Metrics.on_recv m 1;
  check Alcotest.int "load p1" 2 (Sim.Metrics.load m 1);
  check Alcotest.int "load p2" 2 (Sim.Metrics.load m 2);
  check Alcotest.int "sent p1" 1 (Sim.Metrics.sent m 1);
  check Alcotest.int "recv p1" 1 (Sim.Metrics.received m 1);
  check Alcotest.int "total messages" 2 (Sim.Metrics.total_messages m);
  check Alcotest.int "total load" 4 (Sim.Metrics.total_load m)

let test_metrics_bottleneck () =
  let m = Sim.Metrics.create ~n:5 in
  for _ = 1 to 3 do
    Sim.Metrics.on_send m 4
  done;
  Sim.Metrics.on_send m 2;
  let p, l = Sim.Metrics.bottleneck m in
  check Alcotest.int "bottleneck proc" 4 p;
  check Alcotest.int "bottleneck load" 3 l

let test_metrics_overflow () =
  let m = Sim.Metrics.create ~n:3 in
  Sim.Metrics.on_send m 10;
  check Alcotest.int "overflow count" 1 (Sim.Metrics.overflow_processors m);
  check Alcotest.int "load beyond n" 1 (Sim.Metrics.load m 10)

let test_metrics_copy_independent () =
  let m = Sim.Metrics.create ~n:3 in
  Sim.Metrics.on_send m 1;
  let c = Sim.Metrics.copy m in
  Sim.Metrics.on_send m 1;
  check Alcotest.int "copy froze" 1 (Sim.Metrics.load c 1);
  check Alcotest.int "original moved" 2 (Sim.Metrics.load m 1)

let test_metrics_merge () =
  let a = Sim.Metrics.create ~n:3 and b = Sim.Metrics.create ~n:3 in
  Sim.Metrics.on_send a 1;
  Sim.Metrics.on_recv b 1;
  Sim.Metrics.merge_into ~dst:a b;
  check Alcotest.int "merged load" 2 (Sim.Metrics.load a 1);
  check Alcotest.int "merged total" 1 (Sim.Metrics.total_messages a)

(* ------------------------------------------------------------------ *)
(* Network *)

let test_network_delivery_and_charges () =
  let net = Sim.Network.create ~n:3 () in
  let got_pong = ref false in
  Sim.Network.set_handler net (fun ~self ~src msg ->
      match msg with
      | Ping -> Sim.Network.send net ~src:self ~dst:src Pong
      | Pong -> got_pong := true);
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  let steps = Sim.Network.run_to_quiescence net in
  check Alcotest.int "two deliveries" 2 steps;
  Alcotest.(check bool) "pong received" true !got_pong;
  let m = Sim.Network.metrics net in
  check Alcotest.int "p1 load" 2 (Sim.Metrics.load m 1);
  check Alcotest.int "p2 load" 2 (Sim.Metrics.load m 2);
  check Alcotest.int "p3 untouched" 0 (Sim.Metrics.load m 3)

let test_network_trace_capture () =
  let net = Sim.Network.create ~n:3 () in
  Sim.Network.set_handler net (fun ~self ~src msg ->
      match msg with
      | Ping -> Sim.Network.send net ~src:self ~dst:src Pong
      | Pong -> ());
  Sim.Network.begin_op net ~origin:1;
  Sim.Network.send net ~src:1 ~dst:3 Ping;
  ignore (Sim.Network.run_to_quiescence net);
  let trace = Sim.Network.end_op net in
  check Alcotest.int "messages" 2 (Sim.Trace.message_count trace);
  Alcotest.(check (list int)) "I_p" [ 1; 3 ] (Sim.Trace.processors trace)

let test_network_time_advances () =
  let net = Sim.Network.create ~delay:(Sim.Delay.Constant 2.0) ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ _ -> ());
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  ignore (Sim.Network.run_to_quiescence net);
  check (Alcotest.float 1e-9) "clock" 2.0 (Sim.Network.now net)

let test_network_local_timers_free () =
  let net = Sim.Network.create ~n:2 () in
  let fired = ref false in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : ping) -> ());
  Sim.Network.schedule_local net ~delay:1.0 (fun () -> fired := true);
  ignore (Sim.Network.run_to_quiescence net);
  Alcotest.(check bool) "fired" true !fired;
  check Alcotest.int "no messages" 0
    (Sim.Metrics.total_messages (Sim.Network.metrics net))

let test_network_quiescence_guard () =
  (* A protocol that forwards forever must trip the step guard. *)
  let net = Sim.Network.create ~n:2 () in
  Sim.Network.set_handler net (fun ~self ~src (_ : ping) ->
      Sim.Network.send net ~src:self ~dst:src Ping);
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  match Sim.Network.run_to_quiescence ~max_steps:100 net with
  | exception Sim.Network.Storm { max_steps; pending; now; deliveries } ->
      check Alcotest.int "guard limit carried" 100 max_steps;
      check Alcotest.bool "still pending" true (pending > 0);
      check Alcotest.bool "time advanced" true (now > 0.);
      check Alcotest.int "deliveries = steps taken" 100 deliveries
  | _ -> Alcotest.fail "expected divergence guard"

let test_network_clone_requires_quiescence () =
  let net = Sim.Network.create ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : ping) -> ());
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  (match Sim.Network.clone_quiescent net with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected clone failure with pending message");
  ignore (Sim.Network.run_to_quiescence net);
  let clone = Sim.Network.clone_quiescent net in
  check Alcotest.int "metrics carried" 1
    (Sim.Metrics.total_messages (Sim.Network.metrics clone))

let test_network_fifo_under_constant_delay () =
  let net = Sim.Network.create ~delay:(Sim.Delay.Constant 1.0) ~n:2 () in
  let received = ref [] in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ msg ->
      received := msg :: !received);
  List.iter (fun i -> Sim.Network.send net ~src:1 ~dst:2 i) [ 1; 2; 3; 4 ];
  ignore (Sim.Network.run_to_quiescence net);
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4 ] (List.rev !received)

let test_network_bits_accounting () =
  let bits = function Ping -> 10 | Pong -> 3 in
  let net = Sim.Network.create ~bits ~n:2 () in
  Sim.Network.set_handler net (fun ~self ~src msg ->
      match msg with
      | Ping -> Sim.Network.send net ~src:self ~dst:src Pong
      | Pong -> ());
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "total bits" 13 (Sim.Network.total_bits net);
  check Alcotest.int "max bits" 10 (Sim.Network.max_message_bits net)

let test_network_bits_default_zero () =
  let net = Sim.Network.create ~n:2 () in
  Sim.Network.set_handler net (fun ~self:_ ~src:_ (_ : ping) -> ());
  Sim.Network.send net ~src:1 ~dst:2 Ping;
  ignore (Sim.Network.run_to_quiescence net);
  check Alcotest.int "unmeasured" 0 (Sim.Network.total_bits net)

let test_network_fifo_links_under_reordering_delay () =
  (* Exponential delays reorder same-link messages by default; ~fifo:true
     forbids it. *)
  let run ~fifo =
    let net =
      Sim.Network.create ~fifo ~delay:(Sim.Delay.Exponential 1.0) ~seed:9 ~n:2 ()
    in
    let received = ref [] in
    Sim.Network.set_handler net (fun ~self:_ ~src:_ msg ->
        received := msg :: !received);
    List.iter (fun i -> Sim.Network.send net ~src:1 ~dst:2 i) (List.init 20 Fun.id);
    ignore (Sim.Network.run_to_quiescence net);
    List.rev !received
  in
  let in_order = List.init 20 Fun.id in
  Alcotest.(check (list int)) "fifo preserves order" in_order (run ~fifo:true);
  Alcotest.(check bool) "non-fifo reorders (this seed)" true
    (run ~fifo:false <> in_order)

let test_network_fifo_cross_link_free () =
  (* FIFO is per directed link: different links may still interleave. *)
  let net =
    Sim.Network.create ~fifo:true ~delay:(Sim.Delay.Exponential 1.0) ~seed:4 ~n:3 ()
  in
  let received = ref [] in
  Sim.Network.set_handler net (fun ~self:_ ~src msg ->
      received := (src, msg) :: !received);
  for i = 0 to 9 do
    Sim.Network.send net ~src:1 ~dst:3 i;
    Sim.Network.send net ~src:2 ~dst:3 i
  done;
  ignore (Sim.Network.run_to_quiescence net);
  let per_src s =
    List.filter_map (fun (src, m) -> if src = s then Some m else None)
      (List.rev !received)
  in
  Alcotest.(check (list int)) "link 1->3 ordered" (List.init 10 Fun.id) (per_src 1);
  Alcotest.(check (list int)) "link 2->3 ordered" (List.init 10 Fun.id) (per_src 2)

let prop_network_message_conservation =
  QCheck2.Test.make ~name:"total load = 2 * messages (echo protocol)"
    ~count:50
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 1 8) (int_range 1 8)))
    (fun sends ->
      let net = Sim.Network.create ~n:8 () in
      Sim.Network.set_handler net (fun ~self ~src msg ->
          match msg with
          | Ping when self <> src -> Sim.Network.send net ~src:self ~dst:src Pong
          | Ping | Pong -> ());
      List.iter (fun (a, b) -> Sim.Network.send net ~src:a ~dst:b Ping) sends;
      ignore (Sim.Network.run_to_quiescence net);
      let m = Sim.Network.metrics net in
      Sim.Metrics.total_load m = 2 * Sim.Metrics.total_messages m)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          q prop_rng_int_uniformish;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          q prop_heap_matches_sorted_model;
        ] );
      ( "delay",
        [
          Alcotest.test_case "constant" `Quick test_delay_constant;
          Alcotest.test_case "strictly positive" `Quick test_delay_positive;
          Alcotest.test_case "uniform range" `Quick test_delay_uniform_range;
          Alcotest.test_case "parse roundtrip" `Quick test_delay_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_delay_parse_errors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "processors" `Quick test_trace_processors;
          Alcotest.test_case "empty has origin" `Quick test_trace_empty_includes_origin;
          Alcotest.test_case "intersects" `Quick test_trace_intersects;
          Alcotest.test_case "duration" `Quick test_trace_duration;
          Alcotest.test_case "dot export" `Quick test_trace_to_dot;
          Alcotest.test_case "lanes chart" `Quick test_trace_pp_lanes;
        ] );
      ( "comm-list",
        [
          Alcotest.test_case "structure" `Quick test_comm_list_structure;
          Alcotest.test_case "merges consecutive" `Quick test_comm_list_merges_consecutive;
          Alcotest.test_case "empty" `Quick test_comm_list_empty;
          Alcotest.test_case "label range" `Quick test_comm_list_label_out_of_range;
        ] );
      ( "dag",
        [
          Alcotest.test_case "structure" `Quick test_dag_structure;
          Alcotest.test_case "empty" `Quick test_dag_empty;
          Alcotest.test_case "from real network" `Quick test_dag_from_real_network;
          Alcotest.test_case "timer causality" `Quick test_dag_timer_causality;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "bottleneck" `Quick test_metrics_bottleneck;
          Alcotest.test_case "overflow ids" `Quick test_metrics_overflow;
          Alcotest.test_case "copy independent" `Quick test_metrics_copy_independent;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery and charges" `Quick test_network_delivery_and_charges;
          Alcotest.test_case "trace capture" `Quick test_network_trace_capture;
          Alcotest.test_case "time advances" `Quick test_network_time_advances;
          Alcotest.test_case "local timers are free" `Quick test_network_local_timers_free;
          Alcotest.test_case "divergence guard" `Quick test_network_quiescence_guard;
          Alcotest.test_case "clone requires quiescence" `Quick test_network_clone_requires_quiescence;
          Alcotest.test_case "FIFO under constant delay" `Quick test_network_fifo_under_constant_delay;
          Alcotest.test_case "bits accounting" `Quick test_network_bits_accounting;
          Alcotest.test_case "bits default zero" `Quick test_network_bits_default_zero;
          Alcotest.test_case "fifo links" `Quick test_network_fifo_links_under_reordering_delay;
          Alcotest.test_case "fifo is per link" `Quick test_network_fifo_cross_link_free;
          q prop_network_message_conservation;
        ] );
    ]
