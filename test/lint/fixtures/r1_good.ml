(* R1 good: every crossing is protected — Atomic, a Mutex bracket held
   on both sides, or join publication (write pre-join, read post-join,
   per-index worker slots). *)

let atomic_counter () =
  let counter = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr counter) in
  Domain.join d;
  Atomic.get counter

let mutex_counter () =
  let m = Mutex.create () in
  let counter = ref 0 in
  let d =
    Domain.spawn (fun () ->
        Mutex.lock m;
        counter := !counter + 1;
        Mutex.unlock m)
  in
  Mutex.lock m;
  let v = !counter in
  Mutex.unlock m;
  Domain.join d;
  v

let join_publication f xs =
  let items = Array.of_list xs in
  let results = Array.make (Array.length items) None in
  let worker w () =
    let i = ref w in
    while !i < Array.length items do
      results.(!i) <- Some (f items.(!i));
      i := !i + 2
    done
  in
  let d = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d;
  Array.to_list results
