(* P1 fixture (good): specific handlers; Stall propagates (re-raised
   after cleanup, or converted only via Counter_intf.result_of_inc). *)

let inc t ~origin = try send t origin with Not_found -> 0

let handle t msg =
  try step t msg
  with Counter.Counter_intf.Stall _ as e ->
    cleanup t;
    raise e

let audited t msg =
  try step t msg
  with e ->
    record t e;
    raise e

let inc_result t ~origin =
  Counter.Counter_intf.result_of_inc (fun () -> inc t ~origin)
