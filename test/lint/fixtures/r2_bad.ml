(* R2 bad: the worker keeps writing after signalling the round barrier
   — the coordinator may already be reading. *)

let round m cv (results : int array) w =
  let worker () =
    results.(w) <- 1;
    Mutex.lock m;
    Condition.signal cv;
    Mutex.unlock m;
    results.(w) <- 2
  in
  Domain.spawn worker
