(* R1 bad: mutable state crosses Domain.spawn unprotected. *)

let shared_ref () =
  let counter = ref 0 in
  let d = Domain.spawn (fun () -> counter := !counter + 1) in
  let v = !counter in
  Domain.join d;
  v + !counter

let shared_table tbl =
  let d = Domain.spawn (fun () -> Hashtbl.replace tbl "k" 1) in
  let v = Hashtbl.length tbl in
  Domain.join d;
  v

type cell = { mutable value : int }

let shared_field (c : cell) =
  let d = Domain.spawn (fun () -> c.value <- c.value + 1) in
  let v = c.value in
  Domain.join d;
  v
