(* R3 good: draws happen before spawning (or come from a keyed stream
   handed in), the engine is never touched from a worker, and
   exceptions are parked for the coordinator, not dropped. *)

let draw_outside rng =
  let roll = Rng.int rng 6 in
  Domain.spawn (fun () -> roll + 1)

let keyed_stream ~seed w =
  let stream = Rng.keyed ~seed 1 w in
  Domain.spawn (fun () -> stream)

let parks failure f =
  Domain.spawn (fun () -> try f () with e -> failure := Some e)

let reraises f =
  Domain.spawn (fun () -> try f () with e -> raise e)
