(* D4 fixture (bad): representation tricks and exact float tests. *)

let save oc v = Marshal.to_channel oc v []

let load ic = Marshal.from_channel ic

let cast x = Obj.magic x

let at_unit_time t = t = 1.0

let rate_unset d = d <> 0.
