(* R2 good: everything is published before the signal; any late state
   is touched under the round mutex. *)

let publish_first m cv (results : int array) w =
  let worker () =
    results.(w) <- 1;
    results.(w) <- 2;
    Mutex.lock m;
    Condition.signal cv;
    Mutex.unlock m
  in
  Domain.spawn worker

let late_under_mutex m cv (results : int array) w =
  let worker () =
    Mutex.lock m;
    Condition.signal cv;
    results.(w) <- 2;
    Mutex.unlock m
  in
  Domain.spawn worker
