(* P2 fixture (good): every suppression carries its reason. *)

let unused_helper = 1
[@@warning "-32"] [@@dlint.why "fixture: demonstrating a justified disable"]

[@@@warning "-26-27"]
[@@@dlint.why "fixture: module-wide disable, justified by adjacency"]

let counted tbl =
  (Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0
  [@dlint.allow "D2: counting bindings; every visit order yields the count"])
