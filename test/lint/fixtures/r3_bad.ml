(* R3 bad: Rng draws, Sim.Network mutation and swallowed exceptions
   inside spawned domain contexts. *)

let draws rng = Domain.spawn (fun () -> Rng.int rng 6)

let mutates net p = Domain.spawn (fun () -> Network.send net ~dst:p 0)

let swallows f = Domain.spawn (fun () -> try f () with _ -> ())

let swallows_in_helper f =
  let body () = try f () with _ -> 0 in
  Domain.spawn body
