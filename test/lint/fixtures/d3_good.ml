(* D3 fixture (good): every comparator names its type. *)

let sort_ids ids = List.sort Int.compare ids

let dedup_priorities ps = List.sort_uniq Float.compare ps

let sort_messages msgs = List.sort Message.compare msgs

let order_pairs ps =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
    ps
