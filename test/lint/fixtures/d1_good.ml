(* D1 fixture (good): all randomness through the seeded stream, time
   through the simulated clock. *)

let roll rng = Sim.Rng.int rng 6

let independent_stream rng = Sim.Rng.split rng

let now net = Sim.Network.now net

let bucket ~n id = id mod n
