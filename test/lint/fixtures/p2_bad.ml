(* P2 fixture (bad): suppressions with no recorded reason. *)

let unused_helper = 1 [@@warning "-32"]

[@@@warning "-26-27"]

let vague = (fun x -> x) [@dlint.allow "D2"]

let unknown_rule = 2 [@@dlint.allow "D9: no such rule"]

let typo = 3 [@@dlint.alow "D3: attribute name misspelled"]
