(* D2 fixture (bad): hash-order iteration feeding output. *)

let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%d -> %d\n" k v) tbl

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let stream tbl = Hashtbl.to_seq tbl
