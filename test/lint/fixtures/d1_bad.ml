(* D1 fixture (bad): ambient nondeterminism. Parsed, never compiled. *)

let roll () = Random.int 6

let shuffle_seed () = Random.State.bits (Random.State.make_self_init ())

let cpu_clock () = Sys.time ()

let wall_clock () = Unix.gettimeofday ()

let bucket x = Hashtbl.hash x mod 16
