(* D2 fixture (good): iteration canonicalised by key order, or
   justified where order provably cannot matter. *)

let dump tbl =
  Sim.Det.sorted_iter ~compare:Int.compare
    (fun k v -> Printf.printf "%d -> %d\n" k v)
    tbl

let keys tbl =
  Sim.Det.sorted_fold ~compare:Int.compare (fun k _ acc -> k :: acc) tbl []

let cardinality tbl =
  (Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0
  [@dlint.allow "D2: counting bindings; every visit order yields the count"])
