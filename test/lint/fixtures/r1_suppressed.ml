(* R1 suppressed: the racy crossing carries its ownership argument in
   the ledger — once at binding scope, once at expression scope. *)

let[@dlint.allow
     "R1: single-writer by construction — the spawned domain is the \
      only mutator; the coordinator read is telemetry"] binding_scope ()
    =
  let counter_b = ref 0 in
  let d = Domain.spawn (fun () -> counter_b := !counter_b + 1) in
  let v = !counter_b in
  Domain.join d;
  v

let expression_scope () =
  let counter_e = ref 0 in
  (let d = Domain.spawn (fun () -> counter_e := !counter_e + 1) in
   let v = !counter_e in
   Domain.join d;
   v)
  [@dlint.allow "R1: expression-scope demo of the same waiver"]
