(* R3 suppressed: a file-scope waiver — the floating directive covers
   everything after it. *)

[@@@dlint.allow
  "R3: benchmark harness — the stream is domain-private, never merged \
   back into the seeded run, and a dropped failure only voids one \
   sample"]

let draws rng = Domain.spawn (fun () -> Rng.int rng 6)

let swallows f = Domain.spawn (fun () -> try f () with _ -> ())
