(* D4 fixture (good): explicit formats and intentional float tests. *)

let save oc v = Out_channel.output_string oc (Analysis.Json.to_string v)

let at_unit_time t = Float.equal t 1.0

let rate_unset d = not (Float.equal d 0.)

let close_enough a b = Float.abs (a -. b) < 1e-9
