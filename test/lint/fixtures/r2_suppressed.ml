(* R2 suppressed: binding-scope waiver for a sanctioned late write. *)

let[@dlint.allow
     "R2: the post-signal write is a per-worker diagnostic counter the \
      coordinator only reads after the final join"] round m cv
    (results : int array) w =
  let worker () =
    results.(w) <- 1;
    Mutex.lock m;
    Condition.signal cv;
    Mutex.unlock m;
    results.(w) <- 2
  in
  Domain.spawn worker
