(* D3 fixture (bad): polymorphic comparison on abstract values. *)

let sort_ids ids = List.sort compare ids

let dedup_priorities ps = List.sort_uniq Stdlib.compare ps

let max_message a b = if Stdlib.compare a b >= 0 then a else b

module Id_table = Hashtbl.Make (struct
  type t = int * int

  let equal a b = a = b
  let hash = Hashtbl.hash
end)
