(* P1 fixture (bad): failures silenced instead of propagated. *)

let inc t ~origin = try send t origin with _ -> 0

let handle t msg = try step t msg with Counter_intf.Stall _ -> ()

let handle_any t msg = try step t msg with e -> log e

let poll t = match read t with Some v -> v | exception _ -> 0
