(* Golden tests for dlint: each bad fixture fires its rule at known
   (rule, line) anchors, each good fixture is silent, suppression is
   honoured and ledgered, and the repo's own lib/ + bin/ lint clean. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let rule id =
  match Lint.Registry.find id with
  | Some r -> r
  | None -> Alcotest.failf "rule %s not registered" id

let fixture name = Filename.concat "fixtures" name

(* Scan one fixture with one rule; returns post-suppression findings as
   (rule, line) pairs plus the suppression ledger. *)
let scan ~rules file =
  let raw, directives = Lint.Driver.scan_source ~rules ~file (read_file file) in
  let kept, suppressed = Lint.Suppress.apply ~directives raw in
  (List.sort Lint.Diagnostic.order kept, suppressed, directives)

let anchors diags =
  List.map (fun d -> (d.Lint.Diagnostic.rule, d.Lint.Diagnostic.line)) diags

let check_fixture rule_id name expected () =
  let kept, _, _ = scan ~rules:[ rule rule_id ] (fixture name) in
  Alcotest.(check (list (pair string int))) name expected (anchors kept)

(* One bad + one good fixture per rule; expected anchors are the
   snapshot. A bad fixture that stops firing (or fires elsewhere) is a
   rule regression. *)
let snapshot_cases =
  [
    ("D1", "d1_bad.ml", [ ("D1", 3); ("D1", 5); ("D1", 5); ("D1", 7); ("D1", 9); ("D1", 11) ]);
    ("D1", "d1_good.ml", []);
    ("D2", "d2_bad.ml", [ ("D2", 3); ("D2", 5); ("D2", 7) ]);
    ("D2", "d2_good.ml", []);
    ("D3", "d3_bad.ml", [ ("D3", 3); ("D3", 5); ("D3", 7); ("D3", 9) ]);
    ("D3", "d3_good.ml", []);
    ("D4", "d4_bad.ml", [ ("D4", 3); ("D4", 5); ("D4", 7); ("D4", 9); ("D4", 11) ]);
    ("D4", "d4_good.ml", []);
    ("P1", "p1_bad.ml", [ ("P1", 3); ("P1", 5); ("P1", 7); ("P1", 9) ]);
    ("P1", "p1_good.ml", []);
    ("P2", "p2_bad.ml", [ ("P2", 3); ("P2", 5); ("P2", 7); ("P2", 9); ("P2", 11) ]);
    ("P2", "p2_good.ml", []);
    ("R1", "r1_bad.ml", [ ("R1", 5); ("R1", 11); ("R1", 19) ]);
    ("R1", "r1_good.ml", []);
    ("R2", "r2_bad.ml", [ ("R2", 10) ]);
    ("R2", "r2_good.ml", []);
    ("R3", "r3_bad.ml", [ ("R3", 4); ("R3", 6); ("R3", 8); ("R3", 11) ]);
    ("R3", "r3_good.ml", []);
  ]

let snapshot_tests =
  List.map
    (fun (rule_id, name, expected) ->
      Alcotest.test_case
        (Printf.sprintf "%s %s" rule_id name)
        `Quick
        (check_fixture rule_id name expected))
    snapshot_cases

(* The justified allow in d2_good silences the Hashtbl.fold finding but
   keeps it on the ledger, justification attached. *)
let test_suppression_ledger () =
  let kept, suppressed, directives =
    scan ~rules:[ rule "D2" ] (fixture "d2_good.ml")
  in
  Alcotest.(check (list (pair string int))) "kept" [] (anchors kept);
  Alcotest.(check int) "directives" 1 (List.length directives);
  match suppressed with
  | [ (d, dir) ] ->
      Alcotest.(check string) "rule" "D2" d.Lint.Diagnostic.rule;
      Alcotest.(check bool)
        "justified" true
        (String.length dir.Lint.Suppress.justification > 0)
  | l -> Alcotest.failf "expected 1 suppressed finding, got %d" (List.length l)

(* The drace suppression triples exercise every ledger scope: r1 at
   binding and expression scope, r2 at binding scope, r3 via a file-
   scope floating directive covering two findings. Each fixture must
   end up clean with exactly the expected findings on the ledger. *)
let test_drace_suppression_scopes () =
  List.iter
    (fun (rule_id, name, expected_suppressed) ->
      let kept, suppressed, _ = scan ~rules:[ rule rule_id ] (fixture name) in
      Alcotest.(check (list (pair string int)))
        (name ^ " kept") [] (anchors kept);
      Alcotest.(check int)
        (name ^ " ledger size")
        expected_suppressed
        (List.length suppressed);
      List.iter
        (fun ((d : Lint.Diagnostic.t), (dir : Lint.Suppress.directive)) ->
          Alcotest.(check string) (name ^ " ledger rule") rule_id d.rule;
          Alcotest.(check bool)
            (name ^ " justified") true
            (String.length dir.justification > 0))
        suppressed)
    [
      ("R1", "r1_suppressed.ml", 2);
      ("R2", "r2_suppressed.ml", 1);
      ("R3", "r3_suppressed.ml", 2);
    ]

(* A file that does not parse is itself a finding (pseudo-rule E0). *)
let test_syntax_error_is_finding () =
  let raw, _ =
    Lint.Driver.scan_source ~rules:Lint.Registry.all ~file:"broken.ml"
      "let x = (in"
  in
  match raw with
  | [ d ] -> Alcotest.(check string) "rule" "E0" d.Lint.Diagnostic.rule
  | l -> Alcotest.failf "expected 1 E0 finding, got %d" (List.length l)

let test_unknown_rule_is_usage_error () =
  match Lint.Registry.resolve [ "D9" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule id must not resolve"

let test_missing_path_is_usage_error () =
  match Lint.Driver.run ~rules:Lint.Registry.all ~paths:[ "no/such/dir" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing path must be a usage error"

(* The acceptance gate: the repo's own sources lint clean. The dune deps
   copy lib/ and bin/ next to the sandbox, two levels up from here. *)
let test_tree_is_clean () =
  match
    Lint.Driver.run ~rules:Lint.Registry.all ~paths:[ "../../lib"; "../../bin" ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check (list (pair string int)))
        "findings" [] (anchors o.Lint.Driver.findings);
      Alcotest.(check bool) "scanned whole tree" true (o.Lint.Driver.files > 40)

let () =
  Alcotest.run "lint"
    [
      ("snapshots", snapshot_tests);
      ( "machinery",
        [
          Alcotest.test_case "suppression ledger" `Quick test_suppression_ledger;
          Alcotest.test_case "drace suppression scopes" `Quick
            test_drace_suppression_scopes;
          Alcotest.test_case "syntax error -> E0" `Quick
            test_syntax_error_is_finding;
          Alcotest.test_case "unknown rule -> usage" `Quick
            test_unknown_rule_is_usage_error;
          Alcotest.test_case "missing path -> usage" `Quick
            test_missing_path_is_usage_error;
          Alcotest.test_case "lib/ and bin/ lint clean" `Quick
            test_tree_is_clean;
        ] );
    ]
