(* Open-loop load engine tests (docs/LOAD.md): the arrival generator's
   determinism and distribution properties, the concurrent-history
   checker against a brute-force linearizability reference, the stored
   E20 / open-loop violation goldens, and Driver.run_load end to end —
   including the sim-domains determinism matrix. *)

let check = Alcotest.check

module A = Sim.Arrivals
module H = Counter.History
module D = Counter.Driver

(* ------------------------------------------------------------------ *)
(* Arrival processes *)

let test_of_string_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string s s (A.to_string (A.of_string s)))
    [ "fixed:2"; "poisson:0.5"; "bursty:1.5:4:6" ]

let test_of_string_rejects_garbage () =
  List.iter
    (fun s ->
      match A.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail ("accepted " ^ s))
    [ ""; "poisson"; "poisson:0"; "poisson:-1"; "fixed:x"; "bursty:1:2";
      "uniform:1"; "bursty:1:0:5" ]

let test_fixed_stream_is_a_grid () =
  let s = A.stream (A.Fixed 2.0) ~seed:9 ~origin:3 ~count:40 in
  check Alcotest.int "count" 40 (Array.length s);
  Alcotest.(check bool) "starts after 0" true (s.(0) > 0.);
  Array.iteri
    (fun i t ->
      if i > 0 then
        check (Alcotest.float 1e-9)
          (Printf.sprintf "gap %d" i)
          0.5 (t -. s.(i - 1)))
    s

let test_stream_deterministic_per_seed () =
  let p = A.Poisson 0.7 in
  let a = A.stream p ~seed:11 ~origin:4 ~count:200 in
  let b = A.stream p ~seed:11 ~origin:4 ~count:200 in
  Alcotest.(check (array (float 0.))) "same (seed, origin) = same stream" a b;
  let c = A.stream p ~seed:12 ~origin:4 ~count:200 in
  let d = A.stream p ~seed:11 ~origin:5 ~count:200 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check bool) "different origin differs" true (a <> d)

let test_poisson_mean () =
  (* Mean inter-arrival of a long stream must sit near 1/rate. *)
  List.iter
    (fun rate ->
      let count = 4000 in
      let s = A.stream (A.Poisson rate) ~seed:5 ~origin:1 ~count in
      let mean = s.(count - 1) /. float_of_int count in
      let expected = 1. /. rate in
      Alcotest.(check bool)
        (Printf.sprintf "rate %g: mean %g within 10%% of %g" rate mean
           expected)
        true
        (Float.abs (mean -. expected) < 0.1 *. expected))
    [ 0.25; 1.0; 4.0 ]

let prop_bursty_envelope =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"bursty arrivals respect the on/off envelope"
       ~count:60
       QCheck2.Gen.(
         quad (int_range 0 1000) (float_range 0.5 4.0) (float_range 1.0 8.0)
           (float_range 1.0 8.0))
       (fun (seed, rate, on_len, off_len) ->
         let s =
           A.stream (A.Bursty { rate; on_len; off_len }) ~seed ~origin:2
             ~count:120
         in
         Array.for_all
           (fun t -> Float.rem t (on_len +. off_len) <= on_len +. 1e-9)
           s))

let prop_stream_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"streams are positive and non-decreasing"
       ~count:60
       QCheck2.Gen.(
         pair (int_range 0 1000)
           (oneofl
              [ A.Fixed 1.5; A.Poisson 0.8;
                A.Bursty { rate = 2.0; on_len = 3.0; off_len = 2.0 } ]))
       (fun (seed, proc) ->
         let s = A.stream proc ~seed ~origin:1 ~count:80 in
         let ok = ref (s.(0) > 0.) in
         Array.iteri (fun i t -> if i > 0 && t < s.(i - 1) then ok := false) s;
         !ok))

let prop_merge_sorted_and_complete =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"merge: sorted by time, ops entries, origins in 1..n" ~count:40
       QCheck2.Gen.(
         triple (int_range 0 1000) (int_range 1 32) (int_range 1 300))
       (fun (seed, n, ops) ->
         let plan = A.merge (A.Poisson 0.5) ~seed ~n ~ops in
         Array.length plan = ops
         && Array.for_all (fun (_, o) -> o >= 1 && o <= n) plan
         &&
         let ok = ref true in
         Array.iteri
           (fun i (t, _) -> if i > 0 && t < fst plan.(i - 1) then ok := false)
           plan;
         !ok))

let test_generator_ignores_sim_domains () =
  (* The plan is computed before any network exists; the ambient shard
     count must be invisible to it. *)
  let under d f = if d = 1 then f () else Sim.Network.with_shards d f in
  let reference =
    A.merge (A.Bursty { rate = 1.0; on_len = 2.0; off_len = 3.0 }) ~seed:42
      ~n:16 ~ops:400
  in
  List.iter
    (fun d ->
      let plan =
        under d (fun () ->
            A.merge
              (A.Bursty { rate = 1.0; on_len = 2.0; off_len = 3.0 })
              ~seed:42 ~n:16 ~ops:400)
      in
      Alcotest.(check bool)
        (Printf.sprintf "sim-domains %d" d)
        true (plan = reference))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* History checker vs a brute-force reference *)

let op_equal (a : H.op) (b : H.op) =
  a.origin = b.origin && a.value = b.value
  && Float.equal a.invoked_at b.invoked_at
  && Float.equal a.completed_at b.completed_at

(* A history is linearizable iff some permutation of its operations both
   extends the real-time precedence order and returns increasing values.
   O(ops!) — the reference the O(ops log ops) sweep is checked against. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let brute_force_linearizable history =
  let legal order =
    let rec go = function
      | [] -> true
      | (x : H.op) :: rest ->
          List.for_all
            (fun (y : H.op) ->
              x.value < y.value && not (y.completed_at < x.invoked_at))
            rest
          && go rest
    in
    go order
  in
  List.exists legal (permutations history)

let gen_history =
  (* Up to 8 operations with distinct values 0..k-1 and arbitrary
     overlapping intervals. *)
  QCheck2.Gen.(
    int_range 1 8 >>= fun k ->
    shuffle_l (List.init k Fun.id) >>= fun values ->
    list_size (return k) (pair (float_range 0. 50.) (float_range 0.1 25.))
    >|= fun times ->
    List.map2
      (fun value (invoked_at, dur) ->
        {
          H.origin = value + 1;
          value;
          invoked_at;
          completed_at = invoked_at +. dur;
        })
      values times)

let prop_check_matches_brute_force =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"check agrees with the O(ops!) reference"
       ~count:150 gen_history (fun h ->
         let fast =
           match H.check h with
           | H.Linearizable -> true
           | H.Violation _ -> false
         in
         fast = brute_force_linearizable h))

let prop_witness_valid =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"every violation witness is a real precedence inversion"
       ~count:150 gen_history (fun h ->
         match H.check h with
         | H.Linearizable -> true
         | H.Violation (a, b) ->
             a.completed_at < b.invoked_at && a.value > b.value))

let prop_check_input_order_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"verdict and witness ignore input order"
       ~count:100
       QCheck2.Gen.(gen_history >>= fun h -> shuffle_l h >|= fun s -> (h, s))
       (fun (h, shuffled) ->
         match (H.check h, H.check shuffled) with
         | H.Linearizable, H.Linearizable -> true
         | H.Violation (a, b), H.Violation (a', b') ->
             op_equal a a' && op_equal b b'
         | _ -> false))

let test_check_small_cases () =
  let op value invoked_at completed_at =
    { H.origin = value + 1; value; invoked_at; completed_at }
  in
  (match H.check [] with
  | H.Linearizable -> ()
  | H.Violation _ -> Alcotest.fail "empty history must be linearizable");
  (* Fully overlapping out-of-order values: vacuously linearizable. *)
  (match H.check [ op 1 0. 10.; op 0 0. 10. ] with
  | H.Linearizable -> ()
  | H.Violation _ -> Alcotest.fail "overlap must excuse reordering");
  (* Disjoint intervals with inverted values: the canonical violation. *)
  match H.check [ op 1 0. 1.; op 0 2. 3. ] with
  | H.Violation (a, b) ->
      check Alcotest.int "a.value" 1 a.value;
      check Alcotest.int "b.value" 0 b.value
  | H.Linearizable -> Alcotest.fail "disjoint inversion missed"

(* ------------------------------------------------------------------ *)
(* Stored goldens: the violations the docs talk about must keep
   reproducing bit-for-bit. *)

let test_e20_golden () =
  (* EXPERIMENTS.md E20: counting network n=64 width=8, exponential
     delays, seed 5, stagger 0.5 — the concrete violation the experiment
     prints. *)
  let c =
    Baselines.Counting_network.create_width ~n:64 ~width:8
      ~delay:(Sim.Delay.Exponential 1.0) ~seed:5 ()
  in
  let h =
    Baselines.Counting_network.run_batch_timed c ~stagger:0.5
      ~origins:(List.init 64 (fun i -> i + 1))
      ()
  in
  match H.check h with
  | H.Violation (a, b) ->
      check Alcotest.int "a.origin" 31 a.origin;
      check Alcotest.int "a.value" 44 a.value;
      check Alcotest.int "b.origin" 53 b.origin;
      check Alcotest.int "b.value" 43 b.value;
      Alcotest.(check bool) "a precedes b" true
        (a.completed_at < b.invoked_at)
  | H.Linearizable -> Alcotest.fail "E20 violation disappeared"

let test_open_loop_violation_golden () =
  (* docs/LOAD.md: the moderate-overlap open-loop violation dcount load
     --check gates on. Saturating rates mask the phenomenon (the
     violation window needs a quiet network to close), so the golden
     lives at rate 0.05 per source. *)
  let r =
    D.run_load ~seed:42 ~delay:(Sim.Delay.Exponential 1.0)
      (module Baselines.Counting_network)
      ~n:64 ~arrivals:(A.Poisson 0.05) ~ops:1000
  in
  check Alcotest.int "all complete" 1000 r.D.completed;
  Alcotest.(check bool) "quiescently consistent" true
    r.D.analysis.H.quiescent;
  match r.D.analysis.H.verdict with
  | H.Violation (a, b) ->
      check Alcotest.int "a.origin" 55 a.origin;
      check Alcotest.int "a.value" 920 a.value;
      check Alcotest.int "b.origin" 36 b.origin;
      check Alcotest.int "b.value" 919 b.value
  | H.Linearizable -> Alcotest.fail "open-loop violation disappeared"

let test_retire_tree_linearizable_at_every_overlap () =
  (* The paper's counter serialises at the root: linearizable at every
     load level, from near-sequential to heavily saturated. *)
  List.iter
    (fun rate ->
      let r =
        D.run_load ~seed:42 ~delay:(Sim.Delay.Exponential 1.0)
          (module Core.Retire_counter) ~n:64 ~arrivals:(A.Poisson rate)
          ~ops:300
      in
      check Alcotest.int
        (Printf.sprintf "rate %g: all complete" rate)
        300 r.D.completed;
      Alcotest.(check bool)
        (Printf.sprintf "rate %g: linearizable" rate)
        true r.D.analysis.H.linearizable)
    [ 0.05; 0.5; 2.0 ]

(* ------------------------------------------------------------------ *)
(* Driver.run_load end to end *)

let test_every_concurrent_counter_completes () =
  List.iter
    (fun (module C : Counter.Counter_intf.CONCURRENT) ->
      let r =
        D.run_load ~seed:7 ~delay:(Sim.Delay.Exponential 1.0)
          (module C) ~n:16 ~arrivals:(A.Poisson 0.5) ~ops:200
      in
      check Alcotest.int (C.name ^ ": fault-free loses nothing") 200
        r.D.completed;
      check Alcotest.int (C.name ^ ": lost") 0 r.D.lost;
      Alcotest.(check bool)
        (C.name ^ ": genuinely overlapping")
        true
        (r.D.analysis.H.peak_overlap > 1);
      (* Quorum counters duplicate values under overlap (documented in
         docs/LOAD.md); every other counter stays quiescently
         consistent. *)
      let quorum =
        String.length C.name >= 6 && String.sub C.name 0 6 = "quorum"
      in
      if not quorum then
        Alcotest.(check bool)
          (C.name ^ ": quiescently consistent")
          true r.D.analysis.H.quiescent)
    Baselines.Registry.concurrent_all

let test_latency_percentiles_ordered () =
  let r =
    D.run_load ~seed:42 ~delay:(Sim.Delay.Exponential 1.0)
      (module Baselines.Central) ~n:32 ~arrivals:(A.Poisson 1.0) ~ops:500
  in
  let l = r.D.latency in
  Alcotest.(check bool) "p50 <= p90" true
    (l.Analysis.Histogram.p50 <= l.Analysis.Histogram.p90);
  Alcotest.(check bool) "p90 <= p99" true
    (l.Analysis.Histogram.p90 <= l.Analysis.Histogram.p99);
  Alcotest.(check bool) "p99 <= max" true
    (l.Analysis.Histogram.p99 <= l.Analysis.Histogram.max);
  Alcotest.(check bool) "positive" true (l.Analysis.Histogram.p50 > 0.);
  Alcotest.(check bool) "throughput positive" true (r.D.throughput > 0.)

let test_run_load_sim_domains_matrix () =
  (* The full report — counts, percentiles, verdicts, witness, every
     history entry — must be bit-identical at every shard count. *)
  let render d =
    let r =
      D.run_load ~seed:42 ~delay:(Sim.Delay.Exponential 1.0) ~sim_domains:d
        (module Baselines.Counting_network)
        ~n:64 ~arrivals:(A.Poisson 2.0) ~ops:400
    in
    Format.asprintf "%a@.%s" D.pp_load_report r
      (String.concat ";"
         (List.map
            (fun (o : H.op) ->
              Printf.sprintf "%d,%d,%h,%h" o.origin o.value o.invoked_at
                o.completed_at)
            r.D.history))
  in
  let reference = render 1 in
  List.iter
    (fun d ->
      check Alcotest.string (Printf.sprintf "sim-domains %d" d) reference
        (render d))
    [ 2; 4; 8 ]

let () =
  Alcotest.run "load"
    [
      ( "arrivals",
        [
          Alcotest.test_case "grammar roundtrip" `Quick
            test_of_string_roundtrip;
          Alcotest.test_case "grammar rejects" `Quick
            test_of_string_rejects_garbage;
          Alcotest.test_case "fixed grid" `Quick test_fixed_stream_is_a_grid;
          Alcotest.test_case "deterministic per seed" `Quick
            test_stream_deterministic_per_seed;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          prop_bursty_envelope;
          prop_stream_monotone;
          prop_merge_sorted_and_complete;
          Alcotest.test_case "ignores sim-domains" `Quick
            test_generator_ignores_sim_domains;
        ] );
      ( "checker",
        [
          prop_check_matches_brute_force;
          prop_witness_valid;
          prop_check_input_order_invariant;
          Alcotest.test_case "small cases" `Quick test_check_small_cases;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "E20 seed 5 stagger 0.5" `Quick test_e20_golden;
          Alcotest.test_case "open-loop violation" `Quick
            test_open_loop_violation_golden;
          Alcotest.test_case "retire-tree always linearizable" `Quick
            test_retire_tree_linearizable_at_every_overlap;
        ] );
      ( "run-load",
        [
          Alcotest.test_case "every counter completes" `Quick
            test_every_concurrent_counter_completes;
          Alcotest.test_case "percentiles ordered" `Quick
            test_latency_percentiles_ordered;
          Alcotest.test_case "sim-domains matrix" `Slow
            test_run_load_sim_domains_matrix;
        ] );
    ]
