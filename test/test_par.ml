(* Sim.Par — the multi-domain conservative engine — and Sim.Ltbl.

   The load-bearing property is the determinism matrix: the same relay
   workload run under domains {1, 2, 4, 8} must produce byte-identical
   load vectors and checksums, with and without a crash/recover/partition
   fault plan. For order-independent workloads (the relay's forwarding
   chains are pure functions of (self, hops)) the Par load vector must
   also equal the sequential Sim.Network engine's under the same Constant
   delay model — the cross-engine anchor that pins Par's accounting to
   the engine the goldens were recorded on. *)

let check = Alcotest.check

(* The bench relay: each delivery of [hops > 0] forwards [hops - 1] to a
   pseudo-random next processor. Pure function of (self, hops), so the
   message multiset — and therefore every per-processor (sent, recv)
   count — is independent of delivery order. *)
let next_hop ~n ~self ~hops = 1 + (((self * 2654435761) + hops) mod n)

let injections ~n = min n 64

let relay_par ?faults ~delay ~domains ~n ~hops () =
  let t = Sim.Par.create ?faults ~seed:99 ~delay ~domains ~n () in
  Sim.Par.set_handler t (fun ctx ~src:_ hops ->
      if hops > 0 then
        let self = Sim.Par.self ctx in
        Sim.Par.send ctx ~dst:(next_hop ~n ~self ~hops) (hops - 1));
  for i = 1 to injections ~n do
    Sim.Par.inject t ~src:i ~dst:(1 + (i * 7 mod n)) hops
  done;
  ignore (Sim.Par.run_to_quiescence t);
  Sim.Par.metrics t

let relay_net ?faults ~delay ~n ~hops () =
  let net = Sim.Network.create ?faults ~seed:99 ~delay ~n () in
  Sim.Network.set_handler net (fun ~self ~src:_ hops ->
      if hops > 0 then
        Sim.Network.send net ~src:self ~dst:(next_hop ~n ~self ~hops)
          (hops - 1));
  for i = 1 to injections ~n do
    Sim.Network.send net ~src:i ~dst:(1 + (i * 7 mod n)) hops
  done;
  ignore (Sim.Network.run_to_quiescence net);
  Sim.Network.metrics net

(* n = 257 makes every multi-domain split uneven, exercising the
   block-partition arithmetic. *)
let matrix_n = 257

let fault_plan =
  match Sim.Fault.of_string "crash:3@4/recover:3@40/part:10-20@2,6" with
  | Ok f -> f
  | Error e -> failwith e

let test_matrix ?faults ~delay name () =
  let base = relay_par ?faults ~delay ~domains:1 ~n:matrix_n ~hops:40 () in
  List.iter
    (fun domains ->
      let m = relay_par ?faults ~delay ~domains ~n:matrix_n ~hops:40 () in
      check Alcotest.int
        (Printf.sprintf "%s: checksum, domains=%d" name domains)
        (Sim.Metrics.checksum base) (Sim.Metrics.checksum m);
      Alcotest.(check (array int))
        (Printf.sprintf "%s: load vector, domains=%d" name domains)
        (Sim.Metrics.load_array base)
        (Sim.Metrics.load_array m);
      check Alcotest.int
        (Printf.sprintf "%s: dropped, domains=%d" name domains)
        (Sim.Metrics.dropped base) (Sim.Metrics.dropped m);
      check Alcotest.int
        (Printf.sprintf "%s: crashes, domains=%d" name domains)
        (Sim.Metrics.crashes base) (Sim.Metrics.crashes m))
    [ 2; 4; 8 ]

(* Cross-engine: Constant delay gives both engines identical send/arrival
   times, and the relay is order-independent, so the whole load vector —
   including the fault counters under the crash/recover/partition plan —
   must agree with the sequential engine's. *)
let test_par_equals_network ?faults name () =
  let delay = Sim.Delay.Constant 1.0 in
  let seq = relay_net ?faults ~delay ~n:matrix_n ~hops:40 () in
  List.iter
    (fun domains ->
      let par = relay_par ?faults ~delay ~domains ~n:matrix_n ~hops:40 () in
      check Alcotest.int
        (Printf.sprintf "%s: checksum vs Network, domains=%d" name domains)
        (Sim.Metrics.checksum seq) (Sim.Metrics.checksum par);
      Alcotest.(check (array int))
        (Printf.sprintf "%s: load vector vs Network, domains=%d" name domains)
        (Sim.Metrics.load_array seq)
        (Sim.Metrics.load_array par))
    [ 1; 4 ]

let test_fault_plan_bites () =
  let m =
    relay_par ~faults:fault_plan
      ~delay:(Sim.Delay.Constant 1.0)
      ~domains:2 ~n:matrix_n ~hops:40 ()
  in
  check Alcotest.bool "plan dropped something" true (Sim.Metrics.dropped m > 0);
  check Alcotest.int "one crash" 1 (Sim.Metrics.crashes m);
  check Alcotest.int "one recovery" 1 (Sim.Metrics.recoveries m)

let test_quiescence () =
  let t = Sim.Par.create ~domains:4 ~n:32 () in
  Sim.Par.set_handler t (fun _ ~src:_ () -> ());
  check Alcotest.int "empty run takes no steps" 0
    (Sim.Par.run_to_quiescence t);
  Sim.Par.inject t ~src:1 ~dst:2 ();
  check Alcotest.int "one event" 1 (Sim.Par.run_to_quiescence t);
  check Alcotest.int "nothing pending" 0 (Sim.Par.pending t);
  check Alcotest.int "delivery counted" 1 (Sim.Par.deliveries t)

let test_storm_guard () =
  (* A self-perpetuating relay never quiesces; the guard must fire and
     the pool must shut down cleanly (the run returns by exception, and a
     fresh run on another engine still works afterwards). *)
  let t = Sim.Par.create ~domains:2 ~n:8 () in
  Sim.Par.set_handler t (fun ctx ~src:_ () ->
      let self = Sim.Par.self ctx in
      Sim.Par.send ctx ~dst:(1 + (self mod 8)) ());
  Sim.Par.inject t ~src:1 ~dst:2 ();
  (match Sim.Par.run_to_quiescence ~max_steps:1000 t with
  | _ -> Alcotest.fail "storm guard did not fire"
  | exception Sim.Par.Storm { pending; _ } ->
      check Alcotest.bool "storm reports pending work" true (pending > 0));
  let t2 = Sim.Par.create ~domains:2 ~n:8 () in
  Sim.Par.set_handler t2 (fun _ ~src:_ () -> ());
  Sim.Par.inject t2 ~src:1 ~dst:2 ();
  check Alcotest.int "engine still usable after a storm" 1
    (Sim.Par.run_to_quiescence t2)

let test_handler_exception_propagates () =
  let t = Sim.Par.create ~domains:4 ~n:64 () in
  Sim.Par.set_handler t (fun ctx ~src:_ () ->
      if Sim.Par.self ctx = 60 then failwith "boom");
  for i = 1 to 64 do
    Sim.Par.inject t ~src:i ~dst:i ()
  done;
  match Sim.Par.run_to_quiescence t with
  | _ -> Alcotest.fail "handler exception was swallowed"
  | exception Failure msg -> check Alcotest.string "the boom" "boom" msg

let rejects name f =
  match f () with
  | (_ : int Sim.Par.t) -> Alcotest.failf "%s: not rejected" name
  | exception Invalid_argument _ -> ()

let test_rejections () =
  rejects "zero-lookahead delay" (fun () ->
      Sim.Par.create ~delay:(Sim.Delay.Exponential 1.0) ~n:8 ());
  rejects "zero-based uniform" (fun () ->
      Sim.Par.create ~delay:(Sim.Delay.Uniform (0., 1.)) ~n:8 ());
  let plan s =
    match Sim.Fault.of_string s with Ok f -> f | Error e -> failwith e
  in
  rejects "probabilistic drop" (fun () ->
      Sim.Par.create ~faults:(plan "drop:0.1") ~n:8 ());
  rejects "per-link drop" (fun () ->
      Sim.Par.create ~faults:(plan "drop:1,2:0.5") ~n:8 ());
  rejects "duplication" (fun () ->
      Sim.Par.create ~faults:(plan "dup:0.1") ~n:8 ());
  rejects "count-triggered crash" (fun () ->
      Sim.Par.create ~faults:(plan "crash:3@#5") ~n:8 ());
  rejects "victim above n" (fun () ->
      Sim.Par.create ~faults:(plan "crash:9@1.0") ~n:8 ());
  rejects "n too large for the canonical key" (fun () ->
      Sim.Par.create ~n:(1 lsl 22) ())

(* --- Ltbl ------------------------------------------------------------ *)

(* Model check against a reference Hashtbl over a key space big enough to
   force several growth rehashes from the tiny initial capacity. *)
let ltbl_vs_model =
  QCheck.Test.make ~count:300 ~name:"Ltbl.get/set agree with a Hashtbl model"
    QCheck.(list (triple (int_range 1 60) (int_range 1 60) (int_range 0 999)))
    (fun ops ->
      let t = Sim.Ltbl.create ~initial:4 ~absent:neg_infinity () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (src, dst, v) ->
          let key = Sim.Ltbl.link_key ~src ~dst in
          let expected =
            match Hashtbl.find_opt model key with
            | Some x -> x
            | None -> neg_infinity
          in
          let got = Sim.Ltbl.get t key in
          let value = float_of_int v in
          Hashtbl.replace model key value;
          Sim.Ltbl.set t key value;
          Float.equal got expected
          && Float.equal (Sim.Ltbl.get t key) value
          && Sim.Ltbl.length t = Hashtbl.length model)
        ops)

let test_ltbl_directed_links () =
  let t = Sim.Ltbl.create ~absent:nan () in
  Sim.Ltbl.set t (Sim.Ltbl.link_key ~src:1 ~dst:2) 1.0;
  Sim.Ltbl.set t (Sim.Ltbl.link_key ~src:2 ~dst:1) 2.0;
  check (Alcotest.float 0.) "1->2" 1.0
    (Sim.Ltbl.get t (Sim.Ltbl.link_key ~src:1 ~dst:2));
  check (Alcotest.float 0.) "2->1 is a distinct link" 2.0
    (Sim.Ltbl.get t (Sim.Ltbl.link_key ~src:2 ~dst:1));
  let copy = Sim.Ltbl.copy t in
  Sim.Ltbl.set copy (Sim.Ltbl.link_key ~src:1 ~dst:2) 9.0;
  check (Alcotest.float 0.) "copy is independent" 1.0
    (Sim.Ltbl.get t (Sim.Ltbl.link_key ~src:1 ~dst:2))

let () =
  Alcotest.run "par"
    [
      ( "determinism",
        [
          Alcotest.test_case "domain matrix, constant delay" `Quick
            (test_matrix ~delay:(Sim.Delay.Constant 1.0) "constant");
          Alcotest.test_case "domain matrix, uniform delay" `Quick
            (test_matrix ~delay:(Sim.Delay.Uniform (0.5, 2.0)) "uniform");
          Alcotest.test_case "domain matrix, jitter delay" `Quick
            (test_matrix ~delay:(Sim.Delay.Adversarial_jitter 0.5) "jitter");
          Alcotest.test_case "domain matrix under fault plan" `Quick
            (test_matrix ~faults:fault_plan
               ~delay:(Sim.Delay.Constant 1.0)
               "faulted");
          Alcotest.test_case "par equals sequential engine" `Quick
            (test_par_equals_network "fault-free");
          Alcotest.test_case "par equals sequential engine under faults"
            `Quick
            (test_par_equals_network ~faults:fault_plan "faulted");
          Alcotest.test_case "fault plan actually bites" `Quick
            test_fault_plan_bites;
        ] );
      ( "engine",
        [
          Alcotest.test_case "quiescence bookkeeping" `Quick test_quiescence;
          Alcotest.test_case "storm guard fires and pool shuts down" `Quick
            test_storm_guard;
          Alcotest.test_case "handler exception propagates" `Quick
            test_handler_exception_propagates;
          Alcotest.test_case "deterministic-subset rejections" `Quick
            test_rejections;
        ] );
      ( "ltbl",
        [
          QCheck_alcotest.to_alcotest ltbl_vs_model;
          Alcotest.test_case "directed links are distinct" `Quick
            test_ltbl_directed_links;
        ] );
    ]
