(* Property tests for the two derived views of an operation trace: the
   linearised communication list (Fig. 2) and the exact process DAG
   (Fig. 1). The generator builds random *valid* traces directly through
   the Trace API — events in delivery order, every causal parent a
   previously delivered event — which is exactly the invariant the
   engine guarantees, so properties proved here hold for every trace a
   run can produce. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Random valid traces *)

type spec = {
  s_origin : int;
  (* per event: (src, dst, parent choice in [0, i-1] as an index shift) *)
  s_events : (int * int * int) list;
}

let trace_of_spec spec =
  let t = Sim.Trace.create ~op_index:0 ~origin:spec.s_origin () in
  List.iteri
    (fun i (src, dst, pchoice) ->
      let seq = i + 1 in
      (* A valid parent is 0 (sent by the initiator, outside a handler)
         or the seq of any already-delivered event. *)
      let parent = pchoice mod (i + 1) in
      Sim.Trace.record t
        {
          Sim.Trace.seq;
          time = float_of_int seq;
          src;
          dst;
          tag = "m";
          parent;
        })
    spec.s_events;
  t

let spec_gen =
  QCheck2.Gen.(
    let* n = int_range 2 9 in
    let* origin = int_range 1 n in
    let* events =
      list_size (int_range 0 40)
        (triple (int_range 1 n) (int_range 1 n) (int_range 0 1000))
    in
    return { s_origin = origin; s_events = events })

(* ------------------------------------------------------------------ *)
(* Comm_list: reference model straight from the paper's definition *)

let model_nodes spec =
  (* Head is the origin; each delivery appends its receiver; consecutive
     duplicates collapse. *)
  let rev =
    List.fold_left
      (fun acc (_, dst, _) ->
        match acc with last :: _ when last = dst -> acc | _ -> dst :: acc)
      [ spec.s_origin ] spec.s_events
  in
  List.rev rev

let prop_list_matches_model =
  QCheck2.Test.make ~name:"comm list = origin :: dedup consecutive receivers"
    ~count:500 spec_gen (fun spec ->
      let l = Sim.Comm_list.of_trace (trace_of_spec spec) in
      Sim.Comm_list.nodes l = model_nodes spec)

let prop_list_head_and_length =
  QCheck2.Test.make ~name:"head = origin, length = arcs, labels 1-based"
    ~count:500 spec_gen (fun spec ->
      let l = Sim.Comm_list.of_trace (trace_of_spec spec) in
      let nodes = Sim.Comm_list.nodes l in
      Sim.Comm_list.origin l = spec.s_origin
      && Sim.Comm_list.length l = List.length nodes - 1
      && List.for_all2
           (fun j node -> Sim.Comm_list.label l j = node)
           (List.init (List.length nodes) (fun i -> i + 1))
           nodes)

let prop_list_no_consecutive_dups =
  QCheck2.Test.make ~name:"no consecutive duplicate labels" ~count:500
    spec_gen (fun spec ->
      let nodes = Sim.Comm_list.nodes (trace_of_spec spec |> Sim.Comm_list.of_trace) in
      let rec ok = function
        | a :: (b :: _ as rest) -> a <> b && ok rest
        | _ -> true
      in
      ok nodes)

(* ------------------------------------------------------------------ *)
(* Dag *)

let prop_dag_consistent =
  QCheck2.Test.make ~name:"generated traces satisfy delivery-order causality"
    ~count:500 spec_gen (fun spec ->
      Sim.Dag.consistent_with_delivery_order
        (Sim.Dag.of_trace (trace_of_spec spec)))

let prop_dag_event_count =
  QCheck2.Test.make ~name:"event_count = message_count" ~count:500 spec_gen
    (fun spec ->
      let t = trace_of_spec spec in
      Sim.Dag.event_count (Sim.Dag.of_trace t) = Sim.Trace.message_count t)

let prop_dag_profile_totals =
  QCheck2.Test.make
    ~name:"depth_profile sums to event_count; max_width is its max; \
           critical_path its length"
    ~count:500 spec_gen (fun spec ->
      let d = Sim.Dag.of_trace (trace_of_spec spec) in
      let profile = Sim.Dag.depth_profile d in
      Array.fold_left ( + ) 0 profile = Sim.Dag.event_count d
      && Sim.Dag.max_width d = Array.fold_left max 0 profile
      && Sim.Dag.critical_path d = Array.length profile)

(* A chain trace (each event caused by the previous one) has the whole
   process on one causal path: depth i for event i, width 1 throughout. *)
let test_dag_chain () =
  let t = Sim.Trace.create ~op_index:0 ~origin:1 () in
  for i = 1 to 5 do
    Sim.Trace.record t
      {
        Sim.Trace.seq = i;
        time = float_of_int i;
        src = i;
        dst = i + 1;
        tag = "m";
        parent = i - 1;
      }
  done;
  let d = Sim.Dag.of_trace t in
  check Alcotest.int "critical path" 5 (Sim.Dag.critical_path d);
  check Alcotest.int "max width" 1 (Sim.Dag.max_width d);
  check Alcotest.(array int) "profile" [| 1; 1; 1; 1; 1 |]
    (Sim.Dag.depth_profile d)

(* A star trace (every event caused by the first) is maximally wide. *)
let test_dag_star () =
  let t = Sim.Trace.create ~op_index:0 ~origin:1 () in
  Sim.Trace.record t
    { Sim.Trace.seq = 1; time = 1.; src = 1; dst = 2; tag = "m"; parent = 0 };
  for i = 2 to 5 do
    Sim.Trace.record t
      {
        Sim.Trace.seq = i;
        time = float_of_int i;
        src = 2;
        dst = i + 1;
        tag = "m";
        parent = 1;
      }
  done;
  let d = Sim.Dag.of_trace t in
  check Alcotest.int "critical path" 2 (Sim.Dag.critical_path d);
  check Alcotest.int "max width" 4 (Sim.Dag.max_width d);
  check Alcotest.(array int) "profile" [| 1; 4 |] (Sim.Dag.depth_profile d)

let test_empty_trace () =
  let t = Sim.Trace.create ~op_index:0 ~origin:7 () in
  let l = Sim.Comm_list.of_trace t in
  check Alcotest.(list int) "singleton list" [ 7 ] (Sim.Comm_list.nodes l);
  check Alcotest.int "zero arcs" 0 (Sim.Comm_list.length l);
  let d = Sim.Dag.of_trace t in
  check Alcotest.int "no events" 0 (Sim.Dag.event_count d);
  check Alcotest.int "no path" 0 (Sim.Dag.critical_path d);
  check Alcotest.int "no width" 0 (Sim.Dag.max_width d)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "comm_dag"
    [
      ( "comm_list",
        [
          q prop_list_matches_model;
          q prop_list_head_and_length;
          q prop_list_no_consecutive_dups;
        ] );
      ( "dag",
        [
          q prop_dag_consistent;
          q prop_dag_event_count;
          q prop_dag_profile_totals;
          Alcotest.test_case "chain" `Quick test_dag_chain;
          Alcotest.test_case "star" `Quick test_dag_star;
          Alcotest.test_case "empty" `Quick test_empty_trace;
        ] );
    ]
