(* Generic conformance tests: every counter in the registry must count
   correctly, obey the Hot Spot Lemma on executions, satisfy the lower
   bound, clone faithfully, and be reproducible from its seed. Plus a
   deliberately broken counter proving the Hot Spot checker has teeth. *)

let check = Alcotest.check

let small_n = 27 (* rounded up per counter as needed *)

let all = Baselines.Registry.all

let name_of (module C : Counter.Counter_intf.S) = C.name

let for_all_counters f =
  List.iter (fun ((module C : Counter.Counter_intf.S) as c) -> f C.name c) all

let test_each_once_correct () =
  for_all_counters (fun name c ->
      let r = Counter.Driver.run_each_once c ~n:small_n in
      Alcotest.(check bool) (name ^ " correct") true
        (r.values_exact && r.sequentially_ordered);
      check Alcotest.int (name ^ " ops = n") r.n r.ops)

let test_hotspot_lemma () =
  for_all_counters (fun name c ->
      let r = Counter.Driver.run_each_once c ~n:small_n in
      Alcotest.(check bool) (name ^ " hot spot") true r.hotspot_ok)

let test_lower_bound () =
  for_all_counters (fun name c ->
      let r = Counter.Driver.run_each_once c ~n:small_n in
      Alcotest.(check bool)
        (Printf.sprintf "%s bottleneck %d >= k" name r.bottleneck_load)
        true
        (Core.Lower_bound.satisfied_by ~n:r.n
           ~bottleneck_load:r.bottleneck_load))

let test_deterministic_given_seed () =
  for_all_counters (fun name c ->
      let a = Counter.Driver.run_each_once ~seed:7 c ~n:small_n in
      let b = Counter.Driver.run_each_once ~seed:7 c ~n:small_n in
      check Alcotest.int (name ^ " same messages") a.total_messages
        b.total_messages;
      check Alcotest.int (name ^ " same bottleneck") a.bottleneck_load
        b.bottleneck_load)

let test_schedules_all_correct () =
  let schedules =
    [
      Counter.Schedule.Each_once_shuffled;
      Counter.Schedule.Round_robin 40;
      Counter.Schedule.Random 40;
      Counter.Schedule.Single_origin (1, 20);
    ]
  in
  for_all_counters (fun name c ->
      List.iter
        (fun schedule ->
          let r = Counter.Driver.run c ~n:small_n ~schedule in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s" name r.schedule)
            true
            (r.values_exact && r.sequentially_ordered))
        schedules)

let test_clone_preserves_future () =
  for_all_counters (fun name (module C : Counter.Counter_intf.S) ->
      let n = C.supported_n 16 in
      let c = C.create ~seed:3 ~n () in
      for i = 1 to n / 2 do
        ignore (C.inc c ~origin:i)
      done;
      let clone = C.clone c in
      let a = C.inc c ~origin:1 in
      let b = C.inc clone ~origin:1 in
      check Alcotest.int (name ^ " clone next value") a b)

let test_supported_n_idempotent () =
  for_all_counters (fun name (module C : Counter.Counter_intf.S) ->
      List.iter
        (fun n ->
          let s = C.supported_n n in
          Alcotest.(check bool) (name ^ " >= n") true (s >= n);
          check Alcotest.int (name ^ " idempotent") s (C.supported_n s))
        [ 1; 2; 7; 16; 27; 100 ])

let test_values_monotone_across_origins () =
  (* Sequential semantics: regardless of who asks, values only grow. *)
  for_all_counters (fun name (module C : Counter.Counter_intf.S) ->
      let n = C.supported_n 16 in
      let c = C.create ~n () in
      let rng = Sim.Rng.create ~seed:11 in
      let prev = ref (-1) in
      for _ = 1 to 2 * n do
        let origin = 1 + Sim.Rng.int rng n in
        let v = C.inc c ~origin in
        Alcotest.(check bool) (name ^ " monotone") true (v = !prev + 1);
        prev := v
      done)

let test_correct_under_async_delays () =
  (* Sequential operations are delay-independent: every counter must
     return exact values under reordering delivery too. *)
  List.iter
    (fun delay ->
      for_all_counters (fun name c ->
          let r = Counter.Driver.run ~delay c ~n:16 ~schedule:Counter.Schedule.Each_once in
          Alcotest.(check bool)
            (Format.asprintf "%s under %a" name Sim.Delay.pp delay)
            true
            (r.values_exact && r.sequentially_ordered)))
    [ Sim.Delay.Exponential 1.0; Sim.Delay.Uniform (0.1, 3.0) ]

let test_latency_fields_sane () =
  for_all_counters (fun name c ->
      let r = Counter.Driver.run_each_once c ~n:16 in
      Alcotest.(check bool) (name ^ " mean <= max") true
        (r.mean_op_latency <= r.max_op_latency +. 1e-9);
      Alcotest.(check bool) (name ^ " non-negative") true
        (r.mean_op_latency >= 0.))

let test_latency_central_is_two_hops () =
  let r = Counter.Driver.run_each_once Baselines.Registry.central ~n:20 in
  (* Unit delays: request + reply = 2.0 for every remote op; the holder's
     own op is instantaneous. *)
  check (Alcotest.float 1e-9) "max latency" 2.0 r.max_op_latency;
  Alcotest.(check bool) "mean slightly below 2" true
    (r.mean_op_latency < 2.0 && r.mean_op_latency > 1.8)

let test_duration_equals_critical_path () =
  (* Cross-validation of the causal machinery: under the unit-delay model
     an operation's virtual-time duration must equal the length of the
     longest causal message chain in its process DAG (for protocols
     without local timers). *)
  List.iter
    (fun c ->
      let (module C : Counter.Counter_intf.S) = c in
      let n = C.supported_n 27 in
      let counter = C.create ~delay:(Sim.Delay.Constant 1.0) ~n () in
      for i = 1 to n do
        ignore (C.inc counter ~origin:i)
      done;
      List.iter
        (fun trace ->
          let dag = Sim.Dag.of_trace trace in
          Alcotest.(check (float 1e-9))
            (C.name ^ " duration = critical path")
            (float_of_int (Sim.Dag.critical_path dag))
            (Sim.Trace.duration trace))
        (C.traces counter))
    [
      Baselines.Registry.retire_tree;
      Baselines.Registry.retire_tree_local;
      Baselines.Registry.central;
      Baselines.Registry.counting_network;
      Baselines.Registry.quorum_grid;
    ]

let test_dags_topologically_delivered () =
  (* The engine's delivery order must be a topological order of every
     process DAG, for every counter — the assumption behind using
     delivery order for the communication lists. *)
  for_all_counters (fun name (module C : Counter.Counter_intf.S) ->
      let n = C.supported_n 16 in
      let counter = C.create ~n () in
      for i = 1 to n do
        ignore (C.inc counter ~origin:i)
      done;
      List.iter
        (fun trace ->
          Alcotest.(check bool) (name ^ " topological") true
            (Sim.Dag.consistent_with_delivery_order (Sim.Dag.of_trace trace)))
        (C.traces counter))

(* ------------------------------------------------------------------ *)
(* History / linearizability *)

let hist_op origin value invoked_at completed_at =
  { Counter.History.origin; value; invoked_at; completed_at }

let test_history_linearizable () =
  (* Sequential history: trivially linearizable. *)
  let h = [ hist_op 1 0 0. 1.; hist_op 2 1 2. 3.; hist_op 3 2 4. 5. ] in
  Alcotest.(check bool) "sequential" true (Counter.History.is_linearizable h);
  Alcotest.(check bool) "contiguous" true (Counter.History.values_contiguous h);
  Alcotest.(check int) "no overlap" 1 (Counter.History.concurrency_profile h)

let test_history_violation_detected () =
  (* a completes (t=1) before b starts (t=2), yet a got the larger
     value. *)
  let a = hist_op 1 5 0. 1. and b = hist_op 2 4 2. 3. in
  (match Counter.History.check [ a; b ] with
  | Counter.History.Violation (x, y) ->
      Alcotest.(check int) "violating pair a" a.Counter.History.value
        x.Counter.History.value;
      Alcotest.(check int) "violating pair b" b.Counter.History.value
        y.Counter.History.value
  | Counter.History.Linearizable -> Alcotest.fail "expected violation");
  Alcotest.(check bool) "not linearizable" false
    (Counter.History.is_linearizable [ a; b ])

let test_history_overlap_permits_any_order () =
  (* Overlapping ops may take values in either order. *)
  let h = [ hist_op 1 1 0. 10.; hist_op 2 0 1. 9. ] in
  Alcotest.(check bool) "overlap ok" true (Counter.History.is_linearizable h);
  Alcotest.(check int) "peak 2" 2 (Counter.History.concurrency_profile h)

let test_history_contiguity () =
  Alcotest.(check bool) "gap detected" false
    (Counter.History.values_contiguous [ hist_op 1 0 0. 1.; hist_op 2 2 1. 2. ])

let test_retire_tree_staggered_always_linearizable () =
  (* The root serialises arrivals, so real-time order is preserved. *)
  List.iter
    (fun seed ->
      let c =
        Core.Retire_counter.create ~n:81
          ~delay:(Sim.Delay.Exponential 1.0) ~seed ()
      in
      let h =
        Core.Retire_counter.run_batch_timed c ~stagger:0.5
          ~origins:(List.init 81 (fun i -> i + 1))
          ()
      in
      Alcotest.(check bool) "contiguous" true
        (Counter.History.values_contiguous h);
      Alcotest.(check bool) "linearizable" true
        (Counter.History.is_linearizable h))
    [ 1; 2; 3; 4; 5 ]

let test_counting_network_violates_under_overlap () =
  (* The HSW phenomenon: seed 5, stagger 0.5 yields a real-time
     inversion (pinned deterministic counterexample). *)
  let c =
    Baselines.Counting_network.create_width ~n:64 ~width:8
      ~delay:(Sim.Delay.Exponential 1.0) ~seed:5 ()
  in
  let h =
    Baselines.Counting_network.run_batch_timed c ~stagger:0.5
      ~origins:(List.init 64 (fun i -> i + 1))
      ()
  in
  Alcotest.(check bool) "still contiguous (quiescent consistency)" true
    (Counter.History.values_contiguous h);
  Alcotest.(check bool) "but not linearizable" false
    (Counter.History.is_linearizable h)

let test_registry_lookup () =
  check Alcotest.int "fifteen counters" 15 (List.length all);
  List.iter
    (fun name ->
      match Baselines.Registry.find name with
      | Some (module C : Counter.Counter_intf.S) ->
          check Alcotest.string "found right module" name C.name
      | None -> Alcotest.failf "missing %s" name)
    (Baselines.Registry.names ());
  Alcotest.(check bool)
    "unknown name" true
    (Baselines.Registry.find "no-such-counter" = None)

let test_names_unique () =
  let names = List.sort compare (Baselines.Registry.names ()) in
  Alcotest.(check bool)
    "names unique" true
    (List.sort_uniq compare names = names)

(* ------------------------------------------------------------------ *)
(* A deliberately broken counter: each processor counts locally and
   exchanges no messages. It violates the Hot Spot Lemma's premise and
   returns wrong values — proving our checkers detect real breakage.
   Lives in the baselines library (Registry.broken) so the model checker
   can sweep it too. *)

module Amnesiac = Baselines.Amnesiac

let test_broken_counter_fails_checks () =
  let r =
    Counter.Driver.run (module Amnesiac) ~n:8
      ~schedule:(Counter.Schedule.Round_robin 16)
  in
  Alcotest.(check bool) "wrong values detected" false
    (r.values_exact && r.sequentially_ordered);
  Alcotest.(check bool) "hot spot violation detected" false r.hotspot_ok;
  Alcotest.(check bool) "violations counted" true (r.hotspot_violations > 0)

let test_broken_counter_violates_lower_bound () =
  (* Zero messages: the lower bound is unsatisfiable — which is exactly
     why no correct counter can work this way. *)
  let r = Counter.Driver.run_each_once (module Amnesiac) ~n:8 in
  Alcotest.(check bool) "bound violated" false
    (Core.Lower_bound.satisfied_by ~n:r.n ~bottleneck_load:r.bottleneck_load)

(* ------------------------------------------------------------------ *)
(* Schedules *)

let test_schedule_each_once () =
  let rng = Sim.Rng.create ~seed:1 in
  Alcotest.(check (list int))
    "identity order" [ 1; 2; 3; 4 ]
    (Counter.Schedule.origins Counter.Schedule.Each_once rng ~n:4)

let test_schedule_shuffled_is_permutation () =
  let rng = Sim.Rng.create ~seed:1 in
  let o = Counter.Schedule.origins Counter.Schedule.Each_once_shuffled rng ~n:20 in
  Alcotest.(check (list int))
    "permutation" (List.init 20 (fun i -> i + 1))
    (List.sort compare o)

let test_schedule_round_robin () =
  let rng = Sim.Rng.create ~seed:1 in
  Alcotest.(check (list int))
    "wraps" [ 1; 2; 3; 1; 2 ]
    (Counter.Schedule.origins (Counter.Schedule.Round_robin 5) rng ~n:3)

let test_schedule_explicit_range_checked () =
  let rng = Sim.Rng.create ~seed:1 in
  match
    Counter.Schedule.origins (Counter.Schedule.Explicit [ 1; 9 ]) rng ~n:4
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected range check"

let test_schedule_ops () =
  check Alcotest.int "each once" 7 (Counter.Schedule.ops Counter.Schedule.Each_once ~n:7);
  check Alcotest.int "random" 30 (Counter.Schedule.ops (Counter.Schedule.Random 30) ~n:7)

let prop_random_schedule_in_range =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random schedules stay in range" ~count:100
       QCheck2.Gen.(pair (int_range 1 50) (int_range 0 100))
       (fun (n, ops) ->
         let rng = Sim.Rng.create ~seed:(n + ops) in
         let o = Counter.Schedule.origins (Counter.Schedule.Random ops) rng ~n in
         List.for_all (fun p -> p >= 1 && p <= n) o))

let () =
  ignore name_of;
  Alcotest.run "counters"
    [
      ( "conformance",
        [
          Alcotest.test_case "each-once correct" `Quick test_each_once_correct;
          Alcotest.test_case "hot spot lemma" `Quick test_hotspot_lemma;
          Alcotest.test_case "lower bound satisfied" `Quick test_lower_bound;
          Alcotest.test_case "deterministic given seed" `Quick test_deterministic_given_seed;
          Alcotest.test_case "all schedules correct" `Slow test_schedules_all_correct;
          Alcotest.test_case "clone preserves future" `Quick test_clone_preserves_future;
          Alcotest.test_case "supported_n idempotent" `Quick test_supported_n_idempotent;
          Alcotest.test_case "values monotone" `Quick test_values_monotone_across_origins;
          Alcotest.test_case "correct under async delays" `Slow test_correct_under_async_delays;
          Alcotest.test_case "latency fields sane" `Quick test_latency_fields_sane;
          Alcotest.test_case "central latency = 2 hops" `Quick test_latency_central_is_two_hops;
          Alcotest.test_case "duration = critical path" `Quick test_duration_equals_critical_path;
          Alcotest.test_case "delivery order topological" `Quick test_dags_topologically_delivered;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "sequential history" `Quick test_history_linearizable;
          Alcotest.test_case "violation detected" `Quick test_history_violation_detected;
          Alcotest.test_case "overlap permits any order" `Quick test_history_overlap_permits_any_order;
          Alcotest.test_case "contiguity" `Quick test_history_contiguity;
          Alcotest.test_case "retire tree always linearizable" `Quick test_retire_tree_staggered_always_linearizable;
          Alcotest.test_case "counting net violates (HSW)" `Quick test_counting_network_violates_under_overlap;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "names unique" `Quick test_names_unique;
        ] );
      ( "negative-control",
        [
          Alcotest.test_case "broken counter detected" `Quick test_broken_counter_fails_checks;
          Alcotest.test_case "broken counter misses bound" `Quick test_broken_counter_violates_lower_bound;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "each once" `Quick test_schedule_each_once;
          Alcotest.test_case "shuffled permutation" `Quick test_schedule_shuffled_is_permutation;
          Alcotest.test_case "round robin" `Quick test_schedule_round_robin;
          Alcotest.test_case "explicit range check" `Quick test_schedule_explicit_range_checked;
          Alcotest.test_case "ops" `Quick test_schedule_ops;
          prop_random_schedule_in_range;
        ] );
    ]
